package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	topk "topkdedup"
)

// rawResult pulls the result subtree out of a /topk response without
// re-encoding it, so comparisons are over the exact bytes the server
// sent.
type rawResult struct {
	SnapshotSeq uint64          `json:"snapshot_seq"`
	Records     int             `json:"records"`
	Result      json.RawMessage `json:"result"`
}

// stripTimes zeroes the wall-clock phase timings inside per-level
// stats. Everything else in a result is deterministic; timings are the
// one field that legitimately varies run to run, so the differential
// byte comparison erases them on both sides.
func stripTimes(stats []topk.LevelStats) {
	for i := range stats {
		stats[i].CollapseTime, stats[i].BoundTime, stats[i].PruneTime = 0, 0, 0
	}
}

// canonTopK re-encodes served /topk result bytes with timings zeroed.
func canonTopK(t *testing.T, data []byte) []byte {
	t.Helper()
	var res topk.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("decode result: %v: %s", err, data)
	}
	stripTimes(res.Pruning)
	out, err := json.Marshal(&res)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// batchTopKBytes runs the batch engine over the given records in one
// shot and marshals the result exactly as the server does (timings
// zeroed for comparison).
func batchTopKBytes(t *testing.T, recs []IngestRecord, k, r int) []byte {
	t.Helper()
	d := topk.NewDataset("served", "name")
	for _, rec := range recs {
		w := rec.Weight
		if w == 0 {
			w = 1
		}
		d.Append(w, rec.Truth, rec.Values...)
	}
	eng := topk.New(d, toyLevels(), toyScorer(), topk.Config{})
	res, err := eng.TopK(k, r)
	if err != nil {
		t.Fatalf("batch engine: %v", err)
	}
	stripTimes(res.Pruning)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// serveTopKBytes ingests the records through HTTP (split into the given
// batch sizes), forces a snapshot, queries /topk, and returns the raw
// result bytes.
func serveTopKBytes(t *testing.T, ts *httptest.Server, recs []IngestRecord, batches []int, k, r int) []byte {
	t.Helper()
	at := 0
	for _, sz := range batches {
		end := at + sz
		if end > len(recs) {
			end = len(recs)
		}
		if end > at {
			ingestBatch(t, ts, recs[at:end])
		}
		at = end
	}
	if at < len(recs) {
		ingestBatch(t, ts, recs[at:])
	}
	resp := postJSON(t, ts, "/refresh", struct{}{})
	resp.Body.Close()
	_, body := get(t, ts, fmt.Sprintf("/topk?k=%d&r=%d", k, r))
	var raw rawResult
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("decode /topk: %v: %s", err, body)
	}
	if raw.Records != len(recs) {
		t.Fatalf("snapshot has %d records, ingested %d", raw.Records, len(recs))
	}
	return canonTopK(t, raw.Result)
}

// mismatch spins up a fresh server, replays the records as one batch,
// and reports whether the served answer diverges from the batch engine.
// Used by the shrinker.
func mismatch(t *testing.T, recs []IngestRecord, k, r int) bool {
	t.Helper()
	cfg := Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer()}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	got := serveTopKBytes(t, ts, recs, []int{len(recs)}, k, r)
	want := batchTopKBytes(t, recs, k, r)
	return string(got) != string(want)
}

// shrink greedily removes records while the mismatch persists, so the
// failure dump is close to minimal.
func shrink(t *testing.T, recs []IngestRecord, k, r int) []IngestRecord {
	t.Helper()
	cur := append([]IngestRecord(nil), recs...)
	for pass := 0; pass < 4; pass++ {
		removed := false
		for i := 0; i < len(cur) && len(cur) > 1; i++ {
			cand := append(append([]IngestRecord(nil), cur[:i]...), cur[i+1:]...)
			if mismatch(t, cand, k, r) {
				cur = cand
				removed = true
				i--
			}
		}
		if !removed {
			break
		}
	}
	return cur
}

func dumpRecords(recs []IngestRecord) string {
	var b strings.Builder
	for i, r := range recs {
		fmt.Fprintf(&b, "%3d. weight=%g truth=%q values=%q\n", i, r.Weight, r.Truth, r.Values)
	}
	return b.String()
}

// TestDifferentialSnapshotVsBatch is the serving layer's correctness
// anchor: after ANY interleaving of ingest batches, the snapshot TopK
// answer must be byte-identical to running the batch engine over the
// same records in one shot. Trials are seeded; a mismatch is shrunk to
// a near-minimal record set before failing.
func TestDifferentialSnapshotVsBatch(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 10 + r.Intn(120)
		recs := make([]IngestRecord, n)
		for i := range recs {
			e := r.Intn(1 + n/4)
			recs[i] = IngestRecord{
				Weight: 1 + 0.001*r.Float64(),
				Truth:  fmt.Sprintf("E%03d", e),
				Values: []string{fmt.Sprintf("%c%03d.v%d", 'a'+e%6, e, r.Intn(3))},
			}
		}
		// Random batch interleaving: sizes 1..13, with some single-record
		// batches to stress the per-insert publication path.
		var batches []int
		for left := n; left > 0; {
			sz := 1 + r.Intn(13)
			if sz > left {
				sz = left
			}
			batches = append(batches, sz)
			left -= sz
		}
		k := 1 + r.Intn(6)
		rr := 1 + r.Intn(3)

		cfg := Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer()}
		// Alternate refresh policies across trials; the final /refresh in
		// serveTopKBytes pins the queried epoch to the full record set.
		switch trial % 3 {
		case 1:
			cfg.RefreshEvery = 7
		case 2:
			cfg.RefreshEvery = -1
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		got := serveTopKBytes(t, ts, recs, batches, k, rr)
		ts.Close()
		want := batchTopKBytes(t, recs, k, rr)
		if string(got) == string(want) {
			continue
		}
		small := shrink(t, recs, k, rr)
		t.Fatalf("trial %d (seed %d, k=%d, r=%d, batches %v): served TopK != batch engine TopK\n"+
			"shrunk to %d records:\n%s\nserved:  %s\nbatch:   %s",
			trial, 1000+trial, k, rr, batches, len(small), dumpRecords(small),
			serveDump(t, small, k, rr), batchTopKBytes(t, small, k, rr))
	}
}

// serveDump re-runs the shrunk case and returns the served bytes for
// the failure message.
func serveDump(t *testing.T, recs []IngestRecord, k, r int) []byte {
	t.Helper()
	cfg := Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer()}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	return serveTopKBytes(t, ts, recs, []int{len(recs)}, k, r)
}

// TestDifferentialRankVsBatch extends the differential contract to the
// rank endpoint: the served §7.1 rank answer must match the engine's
// TopKRank over the same records.
func TestDifferentialRankVsBatch(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		r := rand.New(rand.NewSource(int64(5000 + trial)))
		n := 20 + r.Intn(60)
		recs := make([]IngestRecord, n)
		for i := range recs {
			e := r.Intn(12)
			recs[i] = IngestRecord{
				Truth:  fmt.Sprintf("E%02d", e),
				Values: []string{fmt.Sprintf("%c%02d.v%d", 'a'+e%6, e, r.Intn(2))},
			}
		}
		cfg := Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer()}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		ingestBatch(t, ts, recs)
		k := 2 + r.Intn(4)
		_, body := get(t, ts, fmt.Sprintf("/rank?k=%d", k))
		ts.Close()
		var raw struct {
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(body, &raw); err != nil {
			t.Fatal(err)
		}
		var served topk.RankResult
		if err := json.Unmarshal(raw.Result, &served); err != nil {
			t.Fatalf("decode rank result: %v: %s", err, raw.Result)
		}
		stripTimes(served.PrunedStats)
		got, err := json.Marshal(&served)
		if err != nil {
			t.Fatal(err)
		}
		d := topk.NewDataset("served", "name")
		for _, rec := range recs {
			d.Append(1, rec.Truth, rec.Values...)
		}
		eng := topk.New(d, toyLevels(), toyScorer(), topk.Config{})
		res, err := eng.TopKRank(k)
		if err != nil {
			t.Fatal(err)
		}
		stripTimes(res.PrunedStats)
		want, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("trial %d: served rank != batch rank\nserved: %s\nbatch:  %s", trial, got, want)
		}
	}
}
