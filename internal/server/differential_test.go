package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	topk "topkdedup"
)

// rawResult pulls the result subtree out of a /topk response without
// re-encoding it, so comparisons are over the exact bytes the server
// sent.
type rawResult struct {
	SnapshotSeq uint64          `json:"snapshot_seq"`
	Records     int             `json:"records"`
	Result      json.RawMessage `json:"result"`
}

// stripTimes zeroes the wall-clock phase timings and the collapse eval
// counters inside per-level stats. Everything else in a result is
// deterministic and compared byte for byte. Timings legitimately vary
// run to run; collapse evals legitimately differ between the served and
// batch pipelines since the incremental rework — the server's maintained
// collapse amortises them at ingest, so a served query reports the few
// (often zero) evals of its delta work where the batch run reports the
// full from-scratch sweep (the sharded differentials strip eval counters
// for the same reason; see INCREMENTAL.md).
func stripTimes(stats []topk.LevelStats) {
	for i := range stats {
		stats[i].CollapseTime, stats[i].BoundTime, stats[i].PruneTime = 0, 0, 0
		stats[i].CollapseEvals = 0
	}
}

// canonTopK re-encodes served /topk result bytes with timings zeroed.
func canonTopK(t *testing.T, data []byte) []byte {
	t.Helper()
	var res topk.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("decode result: %v: %s", err, data)
	}
	stripTimes(res.Pruning)
	out, err := json.Marshal(&res)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// batchTopKBytes runs the batch engine over the given records in one
// shot and marshals the result exactly as the server does (timings
// zeroed for comparison).
func batchTopKBytes(t *testing.T, recs []IngestRecord, k, r int) []byte {
	t.Helper()
	d := topk.NewDataset("served", "name")
	for _, rec := range recs {
		w := rec.Weight
		if w == 0 {
			w = 1
		}
		d.Append(w, rec.Truth, rec.Values...)
	}
	eng := topk.New(d, toyLevels(), toyScorer(), topk.Config{})
	res, err := eng.TopK(k, r)
	if err != nil {
		t.Fatalf("batch engine: %v", err)
	}
	stripTimes(res.Pruning)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// serveTopKBytes ingests the records through HTTP (split into the given
// batch sizes), forces a snapshot, queries /topk, and returns the raw
// result bytes.
func serveTopKBytes(t *testing.T, ts *httptest.Server, recs []IngestRecord, batches []int, k, r int) []byte {
	t.Helper()
	at := 0
	for _, sz := range batches {
		end := at + sz
		if end > len(recs) {
			end = len(recs)
		}
		if end > at {
			ingestBatch(t, ts, recs[at:end])
		}
		at = end
	}
	if at < len(recs) {
		ingestBatch(t, ts, recs[at:])
	}
	resp := postJSON(t, ts, "/refresh", struct{}{})
	resp.Body.Close()
	_, body := get(t, ts, fmt.Sprintf("/topk?k=%d&r=%d", k, r))
	var raw rawResult
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("decode /topk: %v: %s", err, body)
	}
	if raw.Records != len(recs) {
		t.Fatalf("snapshot has %d records, ingested %d", raw.Records, len(recs))
	}
	return canonTopK(t, raw.Result)
}

// mismatch spins up a fresh server, replays the records as one batch,
// and reports whether the served answer diverges from the batch engine.
// Used by the shrinker.
func mismatch(t *testing.T, recs []IngestRecord, k, r int) bool {
	t.Helper()
	cfg := Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer()}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	got := serveTopKBytes(t, ts, recs, []int{len(recs)}, k, r)
	want := batchTopKBytes(t, recs, k, r)
	return string(got) != string(want)
}

// shrink greedily removes records while the mismatch persists, so the
// failure dump is close to minimal.
func shrink(t *testing.T, recs []IngestRecord, k, r int) []IngestRecord {
	t.Helper()
	cur := append([]IngestRecord(nil), recs...)
	for pass := 0; pass < 4; pass++ {
		removed := false
		for i := 0; i < len(cur) && len(cur) > 1; i++ {
			cand := append(append([]IngestRecord(nil), cur[:i]...), cur[i+1:]...)
			if mismatch(t, cand, k, r) {
				cur = cand
				removed = true
				i--
			}
		}
		if !removed {
			break
		}
	}
	return cur
}

func dumpRecords(recs []IngestRecord) string {
	var b strings.Builder
	for i, r := range recs {
		fmt.Fprintf(&b, "%3d. weight=%g truth=%q values=%q\n", i, r.Weight, r.Truth, r.Values)
	}
	return b.String()
}

// TestDifferentialSnapshotVsBatch is the serving layer's correctness
// anchor: after ANY interleaving of ingest batches, the snapshot TopK
// answer must be byte-identical to running the batch engine over the
// same records in one shot. Trials are seeded; a mismatch is shrunk to
// a near-minimal record set before failing.
func TestDifferentialSnapshotVsBatch(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 10 + r.Intn(120)
		recs := make([]IngestRecord, n)
		for i := range recs {
			e := r.Intn(1 + n/4)
			recs[i] = IngestRecord{
				Weight: 1 + 0.001*r.Float64(),
				Truth:  fmt.Sprintf("E%03d", e),
				Values: []string{fmt.Sprintf("%c%03d.v%d", 'a'+e%6, e, r.Intn(3))},
			}
		}
		// Random batch interleaving: sizes 1..13, with some single-record
		// batches to stress the per-insert publication path.
		var batches []int
		for left := n; left > 0; {
			sz := 1 + r.Intn(13)
			if sz > left {
				sz = left
			}
			batches = append(batches, sz)
			left -= sz
		}
		k := 1 + r.Intn(6)
		rr := 1 + r.Intn(3)

		cfg := Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer()}
		// Alternate refresh policies across trials; the final /refresh in
		// serveTopKBytes pins the queried epoch to the full record set.
		switch trial % 3 {
		case 1:
			cfg.RefreshEvery = 7
		case 2:
			cfg.RefreshEvery = -1
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		got := serveTopKBytes(t, ts, recs, batches, k, rr)
		ts.Close()
		want := batchTopKBytes(t, recs, k, rr)
		if string(got) == string(want) {
			continue
		}
		small := shrink(t, recs, k, rr)
		t.Fatalf("trial %d (seed %d, k=%d, r=%d, batches %v): served TopK != batch engine TopK\n"+
			"shrunk to %d records:\n%s\nserved:  %s\nbatch:   %s",
			trial, 1000+trial, k, rr, batches, len(small), dumpRecords(small),
			serveDump(t, small, k, rr), batchTopKBytes(t, small, k, rr))
	}
}

// serveDump re-runs the shrunk case and returns the served bytes for
// the failure message.
func serveDump(t *testing.T, recs []IngestRecord, k, r int) []byte {
	t.Helper()
	cfg := Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer()}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	return serveTopKBytes(t, ts, recs, []int{len(recs)}, k, r)
}

// interleavedRun replays the records on a fresh per-batch-publishing
// server, issuing queries between the ingest batches — so the epoch
// answer cache fills and invalidates repeatedly and the incremental
// bound cache is reused across epochs — and returns the final served
// /topk bytes (after a closing /refresh) for comparison with the batch
// engine.
func interleavedRun(t *testing.T, recs []IngestRecord, batches []int, k, r int) []byte {
	t.Helper()
	cfg := Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer()}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	paths := []string{
		fmt.Sprintf("/topk?k=%d&r=%d", k, r),
		fmt.Sprintf("/rank?k=%d", k),
		"/topk?k=1",
	}
	at, qi := 0, 0
	for _, sz := range batches {
		end := at + sz
		if end > len(recs) {
			end = len(recs)
		}
		if end > at {
			ingestBatch(t, ts, recs[at:end])
		}
		at = end
		// Two identical queries per batch: the first misses (fresh epoch),
		// the second must be a memoised hit of the same epoch.
		path := paths[qi%len(paths)]
		qi++
		for rep := 0; rep < 2; rep++ {
			resp, body := get(t, ts, path)
			if resp.StatusCode != 200 {
				t.Fatalf("interleaved %s: status %d: %s", path, resp.StatusCode, body)
			}
		}
	}
	if at < len(recs) {
		ingestBatch(t, ts, recs[at:])
	}
	resp := postJSON(t, ts, "/refresh", struct{}{})
	resp.Body.Close()
	_, body := get(t, ts, fmt.Sprintf("/topk?k=%d&r=%d", k, r))
	var raw rawResult
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("decode /topk: %v: %s", err, body)
	}
	return canonTopK(t, raw.Result)
}

// shrinkInterleaved greedily removes records while the interleaved
// mismatch persists, replaying with uniform batches of 3 (the original
// batch split no longer applies to a shrunk record set).
func shrinkInterleaved(t *testing.T, recs []IngestRecord, k, r int) []IngestRecord {
	t.Helper()
	miss := func(cand []IngestRecord) bool {
		var batches []int
		for left := len(cand); left > 0; left -= 3 {
			sz := 3
			if sz > left {
				sz = left
			}
			batches = append(batches, sz)
		}
		return string(interleavedRun(t, cand, batches, k, r)) != string(batchTopKBytes(t, cand, k, r))
	}
	cur := append([]IngestRecord(nil), recs...)
	for pass := 0; pass < 4; pass++ {
		removed := false
		for i := 0; i < len(cur) && len(cur) > 1; i++ {
			cand := append(append([]IngestRecord(nil), cur[:i]...), cur[i+1:]...)
			if miss(cand) {
				cur = cand
				removed = true
				i--
			}
		}
		if !removed {
			break
		}
	}
	return cur
}

// TestDifferentialInterleavedQueries is the incremental-vs-scratch
// anchor under realistic traffic: random ingest/publish/query
// interleavings — every epoch queried (twice, so cache hits serve real
// traffic) before the next batch lands — must leave the final answer
// byte-identical to the batch engine. This is the strongest exercise of
// the delta collapse, the cross-epoch bound-verdict reuse, and the
// per-epoch answer cache invalidation working together.
func TestDifferentialInterleavedQueries(t *testing.T) {
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(9000 + trial)))
		n := 15 + r.Intn(90)
		recs := make([]IngestRecord, n)
		for i := range recs {
			e := r.Intn(1 + n/4)
			recs[i] = IngestRecord{
				Weight: 1 + 0.001*r.Float64(),
				Truth:  fmt.Sprintf("E%03d", e),
				Values: []string{fmt.Sprintf("%c%03d.v%d", 'a'+e%6, e, r.Intn(3))},
			}
		}
		var batches []int
		for left := n; left > 0; {
			sz := 1 + r.Intn(9)
			if sz > left {
				sz = left
			}
			batches = append(batches, sz)
			left -= sz
		}
		k := 1 + r.Intn(5)
		rr := 1 + r.Intn(2)
		got := interleavedRun(t, recs, batches, k, rr)
		want := batchTopKBytes(t, recs, k, rr)
		if string(got) == string(want) {
			continue
		}
		small := shrinkInterleaved(t, recs, k, rr)
		t.Fatalf("trial %d (seed %d, k=%d, r=%d, batches %v): interleaved served TopK != batch engine TopK\n"+
			"shrunk to %d records:\n%s\nbatch: %s",
			trial, 9000+trial, k, rr, batches, len(small), dumpRecords(small), batchTopKBytes(t, small, k, rr))
	}
}

// TestDifferentialRankVsBatch extends the differential contract to the
// rank endpoint: the served §7.1 rank answer must match the engine's
// TopKRank over the same records.
func TestDifferentialRankVsBatch(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		r := rand.New(rand.NewSource(int64(5000 + trial)))
		n := 20 + r.Intn(60)
		recs := make([]IngestRecord, n)
		for i := range recs {
			e := r.Intn(12)
			recs[i] = IngestRecord{
				Truth:  fmt.Sprintf("E%02d", e),
				Values: []string{fmt.Sprintf("%c%02d.v%d", 'a'+e%6, e, r.Intn(2))},
			}
		}
		cfg := Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer()}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		ingestBatch(t, ts, recs)
		k := 2 + r.Intn(4)
		_, body := get(t, ts, fmt.Sprintf("/rank?k=%d", k))
		ts.Close()
		var raw struct {
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(body, &raw); err != nil {
			t.Fatal(err)
		}
		var served topk.RankResult
		if err := json.Unmarshal(raw.Result, &served); err != nil {
			t.Fatalf("decode rank result: %v: %s", err, raw.Result)
		}
		stripTimes(served.PrunedStats)
		got, err := json.Marshal(&served)
		if err != nil {
			t.Fatal(err)
		}
		d := topk.NewDataset("served", "name")
		for _, rec := range recs {
			d.Append(1, rec.Truth, rec.Values...)
		}
		eng := topk.New(d, toyLevels(), toyScorer(), topk.Config{})
		res, err := eng.TopKRank(k)
		if err != nil {
			t.Fatal(err)
		}
		stripTimes(res.PrunedStats)
		want, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("trial %d: served rank != batch rank\nserved: %s\nbatch:  %s", trial, got, want)
		}
	}
}
