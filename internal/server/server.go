// Package server is the concurrent query-serving layer over the
// streaming accumulator: the online front door the paper's batch
// pipeline lacks. It wraps one stream.Incremental behind an
// epoch-snapshot design —
//
//   - Ingest (POST /ingest) mutates the write-side accumulator under a
//     mutex, one JSON batch at a time.
//   - Queries (GET /topk, GET /rank) run against immutable
//     copy-on-write stream.Snapshot epochs, published at a configurable
//     refresh policy (after every batch, after every N accepted
//     records, or only on demand via POST /refresh). Queries therefore
//     never block ingest, never race it, and never observe a
//     half-applied batch: a snapshot is only ever taken at a batch
//     boundary.
//
// The handler stack adds a bounded in-flight slot pool (excess requests
// are rejected immediately with 429 and a Retry-After header), a
// per-request timeout (503 via http.TimeoutHandler), and per-endpoint
// latency histograms + snapshot-age gauges exported over GET /metrics
// in the internal/obs JSON shape. /healthz and /metrics bypass the slot
// pool so the server stays observable under overload. Graceful
// shutdown is the standard http.Server.Shutdown contract: cmd/topkd
// stops accepting connections and drains in-flight queries.
//
// See SERVING.md for the API reference and a worked curl session.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	topk "topkdedup"
	"topkdedup/internal/obs"
	"topkdedup/internal/shard"
	"topkdedup/internal/sketch"
	"topkdedup/internal/stream"
	"topkdedup/internal/wal"
)

// Config configures a Server. Schema and Levels are required; the zero
// value of every other field selects a sensible default.
type Config struct {
	// Name labels the accumulated dataset (default "served").
	Name string
	// Schema is the record field schema; every ingested record must
	// supply exactly one value per field, in order.
	Schema []string
	// Levels is the predicate schedule queries run with.
	Levels []topk.Level
	// Scorer is the final pairwise criterion P for R-best answers. May
	// be nil: queries still run, but R is capped at 1 (see topk.New).
	Scorer topk.PairScorer
	// Engine carries the engine knobs (PrunePasses, Workers, ...).
	// Engine.Metrics is ignored — the server routes query metrics to
	// its own collector, exported over /metrics.
	Engine topk.Config
	// RefreshEvery controls snapshot publication: 0 publishes after
	// every ingest batch, N > 0 publishes after at least N records
	// accumulated since the last snapshot (checked at batch boundaries
	// only), and a negative value disables automatic publication so
	// only POST /refresh advances the epoch.
	RefreshEvery int
	// MaxInFlight bounds the ingest/query requests admitted at once —
	// the request queue of the backpressure design. Requests beyond it
	// receive 429 immediately. Default 64.
	MaxInFlight int
	// RequestTimeout is the per-request handler budget; requests
	// exceeding it receive 503 while the server-side work is abandoned
	// to finish in the background. 0 selects the 30s default; negative
	// disables the timeout.
	RequestTimeout time.Duration
	// MaxBatch caps the records accepted in one ingest batch (default
	// 10000); larger batches are rejected with 400.
	MaxBatch int
	// ShardPeers, when non-empty, puts the server in coordinator mode:
	// /topk and /rank TopK queries partition each epoch's snapshot into
	// one canopy-closed shard per peer and drive the bound-exchange
	// protocol over the peers' /shard/* endpoints (each peer is a topkd
	// run with -role shard against the same schema and domain). Results
	// are byte-identical to standalone serving except for eval counters
	// and phase times in the pruning stats. Thresholded /rank?t=
	// queries always run locally. See SHARDING.md.
	ShardPeers []string
	// ShardClient is the HTTP client for coordinator→shard calls (nil
	// selects a client with the server's RequestTimeout per call).
	ShardClient *http.Client
	// ShardReplicate mirrors every canopy part onto a primary + replica
	// peer pair (the replica on the next peer in ring order), so one
	// dead or stalled peer mid-query fails over with the answer
	// unchanged. Requires >= 2 ShardPeers. See SHARDING.md.
	ShardReplicate bool
	// ShardReplica tunes failover (timeouts, hedging, retries) when
	// ShardReplicate is set; the zero value selects shard.ReplicaOptions
	// defaults.
	ShardReplica shard.ReplicaOptions
	// WALDir, when non-empty, makes ingest durable: every accepted batch
	// is appended (and fsynced, per WALOptions.Sync) to a write-ahead
	// log in this directory BEFORE it is applied, and New replays the
	// newest snapshot plus the log tail on boot — a killed process
	// recovers with groups and answers byte-identical to an
	// uninterrupted run (SERVING.md "Durability"). Empty disables
	// durability (the pre-WAL behaviour).
	WALDir string
	// WALOptions tunes the log (segment size, fsync policy, the test
	// crash hook). The Sink field is ignored — wal.* metrics route to
	// the server collector.
	WALOptions wal.Options
	// WALSnapshotEvery writes a flat state snapshot and prunes replayed
	// segments every N accepted batches, bounding boot replay to the
	// tail behind the newest snapshot. 0 selects 256; negative disables
	// snapshotting (boot replays the whole log).
	WALSnapshotEvery int
	// SketchCapacity sizes the approximate fast tier: a bounded
	// Space-Saving sketch (internal/sketch) over the maintained
	// sufficient-closure components, serving GET /topk?mode=approx in
	// microseconds with per-entry error intervals. 0 selects
	// sketch.DefaultCapacity; a negative value disables the sketch
	// entirely (mode=approx and mode=hybrid then answer 400). The
	// sketch is rebuilt from WAL replay on boot — no extra log records.
	SketchCapacity int
	// DefaultMode is the /topk serving mode when the request omits
	// ?mode=: "exact" (the default), "approx", or "hybrid". See
	// SERVING.md "Approximate tier".
	DefaultMode string
	// TraceLimit sizes the ring of recent query traces kept for
	// GET /debug/traces: 0 keeps the default (obs.DefaultTraceLimit),
	// a negative value disables tracing entirely (queries then run the
	// engine's zero-cost untraced path and /debug/traces answers 404).
	TraceLimit int
	// Logger, when non-nil, receives structured request logs (one line
	// per query with the trace and span IDs attached, plus debug lines
	// per guarded endpoint). nil disables logging.
	Logger *slog.Logger
	// SLO configures the per-endpoint service-level objectives behind
	// GET /slo, the slo.* burn-rate metrics, and /healthz's degraded
	// status (see slo.go and OBSERVABILITY.md "SLOs and burn rates").
	// The zero value enables the default objectives; SLO.Disable turns
	// tracking off. Observational only: answers never change with SLO
	// state.
	SLO SLOConfig
	// AuditRate is the fraction of served approx/hybrid answers the
	// background accuracy auditor re-executes against the exact path
	// (OBSERVABILITY.md "Continuous accuracy auditing"): 0 or negative
	// disables the auditor, 1 audits every served answer, 0.01 every
	// hundredth (deterministic 1-in-N sampling). Values above 1 clamp
	// to 1.
	AuditRate float64
	// RuntimeSampleInterval is the period of the runtime.* health
	// sampler (GC pauses, heap, goroutines — see obs.RuntimeSampler).
	// 0 selects 10s; a negative value disables the background ticker
	// (/metrics scrapes still sample synchronously).
	RuntimeSampleInterval time.Duration

	// wrapShardTransport, when non-nil (in-package tests only), wraps
	// the shard transport of every coordinator query — the
	// fault-injection seam (internal/faulty) of the audit tests.
	wrapShardTransport func(shard.Transport) shard.Transport
	// auditViewHook, when non-nil (in-package tests only), replaces the
	// sketch view mode=approx/hybrid serves — the corruption seam the
	// audit tests use to seed containment violations.
	auditViewHook func(*sketch.View) *sketch.View
}

func (c *Config) defaults() error {
	if len(c.Schema) == 0 {
		return fmt.Errorf("server: Schema is required")
	}
	if len(c.Levels) == 0 {
		return fmt.Errorf("server: Levels is required")
	}
	if c.Name == "" {
		c.Name = "served"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 10000
	}
	if c.WALSnapshotEvery == 0 {
		c.WALSnapshotEvery = 256
	}
	if c.AuditRate < 0 {
		c.AuditRate = 0
	}
	if c.AuditRate > 1 {
		c.AuditRate = 1
	}
	switch c.DefaultMode {
	case "":
		c.DefaultMode = ModeExact
	case ModeExact, ModeApprox, ModeHybrid:
	default:
		return fmt.Errorf("server: DefaultMode %q is not exact, approx, or hybrid", c.DefaultMode)
	}
	return nil
}

// epoch is one published snapshot with its sequence number.
type epoch struct {
	snap *stream.Snapshot
	seq  uint64
}

// Server serves TopK count queries over records that keep arriving. See
// the package comment for the concurrency design. Create with New; the
// zero value is not usable.
type Server struct {
	cfg     Config
	metrics *obs.Collector
	tracer  *obs.Recorder // nil when Config.TraceLimit < 0
	logger  *slog.Logger
	sem     chan struct{}

	mu      sync.Mutex // write side: acc, pending, publication
	acc     *stream.Incremental
	pending int // records accumulated since the last snapshot

	epoch atomic.Pointer[epoch]
	seq   atomic.Uint64

	// answers memoises query results per epoch with singleflight
	// coalescing (see cache.go and INCREMENTAL.md); flushed on every
	// publish.
	answers answerCache

	// Shard-node state: coordinator sessions loaded over /shard/load.
	shardMu       sync.Mutex
	shardSessions map[string]*shardSession
	// Coordinator state: the client used for /shard/* calls to peers.
	shardClient *http.Client

	// Durability state (see durability.go): the open WAL (nil when
	// Config.WALDir is empty), the accepted-batch count since the last
	// snapshot (guarded by mu), and the records replayed at boot.
	wal        *wal.Log
	walBatches int
	recovered  int
	snapMu     sync.Mutex // serialises Checkpoint's write + prune

	// bg tracks hybrid-mode background exact computations, audit runs,
	// and the runtime sampler loop so Close can drain them before
	// releasing durable resources.
	bg sync.WaitGroup

	// Ops-grade telemetry state (slo.go, audit.go): start time for
	// uptime, the SLO tracker (nil when disabled), the runtime sampler
	// and its ticker stop channel, the last completed WAL checkpoint
	// (unixnano, for wal.checkpoint.age_seconds), and the audit
	// sampler's 1-in-N state.
	started        time.Time
	slo            *sloTracker
	rtSampler      *obs.RuntimeSampler
	rtStop         chan struct{}
	stopOnce       sync.Once
	lastCheckpoint atomic.Int64
	auditEvery     uint64
	auditSeq       atomic.Uint64
}

// New creates a Server and publishes the initial (empty) snapshot as
// epoch 0, so queries are answerable before the first ingest.
func New(cfg Config) (*Server, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	acc, err := stream.New(cfg.Name, cfg.Schema, cfg.Levels)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:           cfg,
		metrics:       obs.NewCollector(),
		logger:        cfg.Logger,
		sem:           make(chan struct{}, cfg.MaxInFlight),
		acc:           acc,
		shardSessions: make(map[string]*shardSession),
		shardClient:   cfg.ShardClient,
		started:       time.Now(),
	}
	if !cfg.SLO.Disable {
		s.slo = newSLOTracker(cfg.SLO, s.metrics)
	}
	if cfg.AuditRate > 0 {
		s.auditEvery = uint64(math.Round(1 / cfg.AuditRate))
		if s.auditEvery < 1 {
			s.auditEvery = 1
		}
	}
	s.rtSampler = obs.NewRuntimeSampler(s.metrics)
	if cfg.RuntimeSampleInterval >= 0 {
		interval := cfg.RuntimeSampleInterval
		if interval == 0 {
			interval = 10 * time.Second
		}
		s.rtStop = make(chan struct{})
		s.bg.Add(1)
		go s.runtimeLoop(interval)
	}
	s.answers.entries = make(map[answerKey]*answerEntry)
	// Route the accumulator's maintenance metrics (stream.add.*, and the
	// incremental state's inc.delta.* delta-apply counters) into the
	// server collector so /metrics shows ingest-side work too.
	acc.SetMetrics(s.metrics)
	// Enable the approximate tier before WAL recovery runs: replay goes
	// through acc.Add, so the recovered sketch is byte-identical to the
	// one an uninterrupted run would hold (no sketch log records).
	if cfg.SketchCapacity >= 0 {
		acc.EnableSketch(cfg.SketchCapacity)
	}
	if cfg.TraceLimit >= 0 {
		s.tracer = obs.NewRecorder(cfg.TraceLimit)
	}
	if s.shardClient == nil {
		timeout := cfg.RequestTimeout
		if timeout < 0 {
			timeout = 0
		}
		s.shardClient = &http.Client{Timeout: timeout}
	}
	// Recover durable state before the first epoch publishes, so records
	// that survived a crash are queryable from the very first snapshot.
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	acc.FlushSketchMetrics() // replay-time sketch counters, one batch
	s.epoch.Store(&epoch{snap: acc.Snapshot(), seq: 0})
	return s, nil
}

// runtimeLoop samples the Go runtime health gauges on a ticker until
// Close stops it. Scrapes also sample synchronously, so the ticker only
// keeps the gauges fresh for pull-less consumers (expvar, tests).
func (s *Server) runtimeLoop(interval time.Duration) {
	defer s.bg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	s.rtSampler.Sample()
	for {
		select {
		case <-s.rtStop:
			return
		case <-t.C:
			s.rtSampler.Sample()
		}
	}
}

// Metrics exposes the server's in-memory collector: per-endpoint
// latency histograms, ingest counters, and the per-query core.* phase
// metrics (the same data GET /metrics serves).
func (s *Server) Metrics() *obs.Collector { return s.metrics }

// Tracer exposes the server's trace recorder (nil when tracing is
// disabled via Config.TraceLimit < 0) — the same data GET /debug/traces
// serves.
func (s *Server) Tracer() *obs.Recorder { return s.tracer }

// traceCtx opens the root span of one query request: adopting the
// caller's trace when a valid Traceparent header is present (the
// coordinator→peer case), else starting a fresh trace. Returns
// (r.Context(), nil) when tracing is disabled — the zero-cost path.
func (s *Server) traceCtx(r *http.Request, name string) (context.Context, *obs.TraceSpan) {
	if s.tracer == nil {
		return r.Context(), nil
	}
	if tid, sid, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		return obs.StartChild(s.tracer.Adopt(r.Context(), tid, sid), name)
	}
	return s.tracer.StartTrace(r.Context(), name)
}

// shardSpan opens the handler-side span of one /shard/* operation. It
// records ONLY under an adopted caller trace (a missing, stripped, or
// garbled Traceparent header leaves the operation untraced rather than
// starting a throwaway local trace — graceful degradation: the
// coordinator's stitched trace is merely partial, the query result is
// untouched).
func (s *Server) shardSpan(r *http.Request, name string) (context.Context, *obs.TraceSpan) {
	if s.tracer == nil {
		return r.Context(), nil
	}
	tid, sid, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	if !ok {
		return r.Context(), nil
	}
	return obs.StartChild(s.tracer.Adopt(r.Context(), tid, sid), name)
}

// Records returns the write-side record count (including records not
// yet visible to queries because no snapshot has been published since).
func (s *Server) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acc.Len()
}

// SnapshotInfo reports the published epoch: its sequence number, the
// records visible to queries, and the snapshot's age.
func (s *Server) SnapshotInfo() (seq uint64, records int, age time.Duration) {
	ep := s.epoch.Load()
	return ep.seq, ep.snap.Len(), time.Since(ep.snap.Taken())
}

// publishLocked freezes the accumulator into a new epoch. Callers hold
// s.mu.
func (s *Server) publishLocked() *epoch {
	ep := &epoch{snap: s.acc.Snapshot(), seq: s.seq.Add(1)}
	s.epoch.Store(ep)
	s.pending = 0
	// Invalidate the memoised answers of the previous epoch — the
	// (epoch, parameters) cache contract of INCREMENTAL.md.
	s.answers.flush(ep.seq)
	s.metrics.Count("server.snapshot.published", 1)
	return ep
}

// Seed bulk-loads a pre-built dataset into the accumulator (bypassing
// HTTP) and publishes a snapshot so the records are immediately
// queryable. The dataset's schema must match the server's. Used by
// cmd/topkd to warm a server from a TSV file at startup.
func (s *Server) Seed(d *topk.Dataset) (int, error) {
	if len(d.Schema) != len(s.cfg.Schema) {
		return 0, fmt.Errorf("server: seed schema %v does not match server schema %v", d.Schema, s.cfg.Schema)
	}
	for i, f := range d.Schema {
		if f != s.cfg.Schema[i] {
			return 0, fmt.Errorf("server: seed schema %v does not match server schema %v", d.Schema, s.cfg.Schema)
		}
	}
	batch := seedBatch(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		// Seeded records follow the same WAL-then-apply ordering as
		// /ingest, so a restart recovers them without re-reading the file.
		if _, err := s.wal.Append(batch); err != nil {
			return 0, fmt.Errorf("server: seed wal append: %w", err)
		}
	}
	for _, rec := range batch {
		s.acc.Add(rec.Weight, rec.Truth, rec.Values...)
	}
	s.acc.FlushSketchMetrics()
	s.pending += len(d.Recs)
	s.publishLocked()
	s.metrics.Count("server.ingest.records", int64(len(d.Recs)))
	return len(d.Recs), nil
}

// Handler returns the server's HTTP handler. It is safe to serve from
// multiple http.Server instances concurrently.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/ingest", s.guard("ingest", http.MethodPost, s.handleIngest))
	mux.Handle("/refresh", s.guard("refresh", http.MethodPost, s.handleRefresh))
	mux.Handle("/topk", s.guard("topk", http.MethodGet, s.handleTopK))
	mux.Handle("/rank", s.guard("rank", http.MethodGet, s.handleRank))
	// Shard-executor endpoints: a coordinator peer loads a partition
	// session and drives the bound-exchange protocol through them.
	mux.Handle("/shard/load", s.guard("shard.load", http.MethodPost, s.handleShardLoad))
	mux.Handle("/shard/collapse", s.guard("shard.collapse", http.MethodPost, s.handleShardCollapse))
	mux.Handle("/shard/bounds", s.guard("shard.bounds", http.MethodPost, s.handleShardBounds))
	mux.Handle("/shard/prune", s.guard("shard.prune", http.MethodPost, s.handleShardPrune))
	mux.Handle("/shard/groups", s.guard("shard.groups", http.MethodPost, s.handleShardGroups))
	mux.Handle("/shard/close", s.guard("shard.close", http.MethodPost, s.handleShardClose))
	// Health, metrics, SLO state, and traces bypass the slot pool and
	// timeout: they must answer even when the query path is saturated
	// (and the shard coordinator stitches traces right after heavy
	// queries).
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/debug/traces", s.handleDebugTraces)
	return mux
}

// guard wraps an endpoint handler with, outermost first: the request
// timeout (503 on expiry), then the bounded slot pool (429 when full —
// the slot is held until the handler truly finishes, even past a
// timeout response, so MaxInFlight bounds real server-side work), then
// method filtering and per-endpoint latency metrics.
func (s *Server) guard(name, method string, h http.HandlerFunc) http.Handler {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, "method not allowed, use "+method)
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.metrics.Count("server.http.throttled", 1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			// Capacity rejections consume the endpoint's error budget.
			s.slo.record(name, http.StatusTooManyRequests, 0)
			return
		}
		defer func() { <-s.sem }()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		elapsed := time.Since(start)
		s.metrics.Count("server.http."+name+".requests", 1)
		s.metrics.Observe("server.http."+name+".seconds", elapsed.Seconds())
		s.slo.record(name, rec.code(), elapsed)
		if s.logger != nil {
			s.logger.Debug("request", "endpoint", name, "seconds", elapsed.Seconds())
		}
	})
	if s.cfg.RequestTimeout <= 0 {
		return inner
	}
	return http.TimeoutHandler(inner, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
}

// statusRecorder captures the status code a guarded handler writes so
// the SLO tracker can classify the request; an unset status means the
// implicit 200 of a bare Write.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the first explicit status and forwards it.
func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// code returns the effective response status.
func (r *statusRecorder) code() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}

// IngestRecord is one record of an ingest batch, values aligned with
// the server's schema.
type IngestRecord struct {
	// Weight is the record's aggregation weight; omitted or 0 means 1.
	Weight float64 `json:"weight,omitempty"`
	// Truth is the optional ground-truth label (evaluation only).
	Truth string `json:"truth,omitempty"`
	// Values are the field values, in schema order.
	Values []string `json:"values"`
}

// IngestRequest is the POST /ingest body: one batch of records,
// applied atomically with respect to snapshots.
type IngestRequest struct {
	// Records is the batch (non-empty, at most Config.MaxBatch).
	Records []IngestRecord `json:"records"`
}

// IngestResponse reports an accepted batch.
type IngestResponse struct {
	// Accepted is the number of records appended (the whole batch).
	Accepted int `json:"accepted"`
	// Records is the write-side total after the batch.
	Records int `json:"records"`
	// SnapshotSeq is the current published epoch after the batch.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Published reports whether this batch triggered a new snapshot.
	Published bool `json:"published"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad ingest body: "+err.Error())
		return
	}
	if len(req.Records) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Records) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds max %d", len(req.Records), s.cfg.MaxBatch))
		return
	}
	// Validate the whole batch before touching the accumulator, so a
	// bad record cannot leave a half-applied batch behind.
	for i, rec := range req.Records {
		if len(rec.Values) != len(s.cfg.Schema) {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("record %d: %d values for schema of %d fields", i, len(rec.Values), len(s.cfg.Schema)))
			return
		}
		if rec.Weight < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("record %d: negative weight", i))
			return
		}
	}
	// The batch is normalised once (omitted weights default to 1) so the
	// WAL logs exactly what the accumulator applies: replay re-Adds the
	// same sequence and recovery is byte-identical.
	batch := walBatch(req.Records)
	s.mu.Lock()
	if s.wal != nil {
		// WAL-then-apply: a batch that cannot be made durable is never
		// applied, so an acknowledged batch is always recoverable and a
		// failed one leaves no trace.
		if _, err := s.wal.Append(batch); err != nil {
			s.mu.Unlock()
			writeError(w, http.StatusInternalServerError, "wal append: "+err.Error())
			return
		}
	}
	for _, rec := range batch {
		s.acc.Add(rec.Weight, rec.Truth, rec.Values...)
	}
	s.acc.FlushSketchMetrics()
	s.pending += len(req.Records)
	published := false
	if s.cfg.RefreshEvery >= 0 && s.pending >= s.cfg.RefreshEvery {
		s.publishLocked()
		published = true
	}
	checkpoint := false
	if s.wal != nil && s.cfg.WALSnapshotEvery > 0 {
		s.walBatches++
		if s.walBatches >= s.cfg.WALSnapshotEvery {
			s.walBatches = 0
			checkpoint = true
		}
	}
	total := s.acc.Len()
	seq := s.epoch.Load().seq
	s.mu.Unlock()
	if checkpoint {
		s.checkpointErr(s.Checkpoint())
	}
	s.metrics.Count("server.ingest.records", int64(len(req.Records)))
	s.metrics.Count("server.ingest.batches", 1)
	writeJSON(w, http.StatusOK, IngestResponse{
		Accepted: len(req.Records), Records: total, SnapshotSeq: seq, Published: published,
	})
}

// RefreshResponse reports a forced snapshot publication.
type RefreshResponse struct {
	// SnapshotSeq is the new epoch's sequence number.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Records is the record count visible in the new snapshot.
	Records int `json:"records"`
}

func (s *Server) handleRefresh(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ep := s.publishLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, RefreshResponse{SnapshotSeq: ep.seq, Records: ep.snap.Len()})
}

// TopKResponse is the GET /topk body: the engine result over the
// published snapshot, plus the epoch it was answered from.
type TopKResponse struct {
	// K and R echo the query parameters.
	K int `json:"k"`
	// R is the number of alternative answers requested.
	R int `json:"r"`
	// SnapshotSeq identifies the epoch the answer was computed on.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Records is the record count of that epoch.
	Records int `json:"records"`
	// Result is the full engine result (answers, pruning stats). Its
	// bytes are identical to marshalling topk.Engine.TopK run over the
	// same records in one shot — the differential tests' contract.
	Result *topk.Result `json:"result"`
	// TraceID names the query's trace (fetch the span tree from
	// /debug/traces?trace=<id>); empty when tracing is disabled.
	TraceID string `json:"trace_id,omitempty"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rr, err := intParam(r, "r", 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if k < 1 {
		writeError(w, http.StatusBadRequest, "k must be >= 1")
		return
	}
	mode, aerr := s.topkMode(r)
	if aerr != nil {
		writeTypedError(w, http.StatusBadRequest, aerr.code, aerr.msg)
		return
	}
	if mode != ModeExact {
		s.handleApprox(w, r, mode, k, rr)
		return
	}
	explain := r.URL.Query().Get("explain") == "1"
	ctx, root := s.traceCtx(r, "server.topk")
	if root != nil {
		root.Attr("k", float64(k))
		root.Attr("r", float64(rr))
	}
	start := time.Now()
	ep := s.epoch.Load()
	key := answerKey{kind: 't', k: k, r: rr}
	status, ent := s.beginAnswer(ep.seq, key, explain)
	var res *topk.Result
	badGateway := false
	switch status {
	case cacheHit:
		res = ent.topk
	case cacheCoalesced:
		select {
		case <-ent.done:
			res, err = ent.topk, ent.err
		case <-ctx.Done():
			root.End()
			writeError(w, http.StatusServiceUnavailable, "canceled while waiting for coalesced query")
			return
		}
	default: // cacheMiss computes and memoises; cacheBypass just computes
		res, badGateway, err = s.computeExact(ctx, ep, k, rr, explain)
		if status == cacheMiss {
			ent.topk, ent.err = res, err
			s.answers.finish(ep.seq, key, ent)
		}
	}
	root.End()
	if err != nil {
		code := http.StatusInternalServerError
		if badGateway {
			code = http.StatusBadGateway
		}
		writeError(w, code, err.Error())
		return
	}
	resp := TopKResponse{
		K: k, R: rr, SnapshotSeq: ep.seq, Records: ep.snap.Len(), Result: res,
	}
	if root != nil {
		resp.TraceID = root.TraceID().String()
	}
	if s.logger != nil {
		s.logger.Info("topk query", "k", k, "r", rr,
			"snapshot_seq", ep.seq, "cache", status, "seconds", time.Since(start).Seconds(),
			"trace", resp.TraceID, "span", root.SpanID().String())
	}
	w.Header().Set("X-Cache", status)
	writeJSON(w, http.StatusOK, resp)
}

// RankResponse is the GET /rank body: a §7 rank-query result over the
// published snapshot.
type RankResponse struct {
	// K echoes the k parameter (TopK rank query form).
	K int `json:"k,omitempty"`
	// T echoes the t parameter (thresholded rank query form).
	T float64 `json:"t,omitempty"`
	// SnapshotSeq identifies the epoch the answer was computed on.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Records is the record count of that epoch.
	Records int `json:"records"`
	// Result is the rank-query result (entries, settledness).
	Result *topk.RankResult `json:"result"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	ep := s.epoch.Load()
	if tRaw := r.URL.Query().Get("t"); tRaw != "" {
		t, err := strconv.ParseFloat(tRaw, 64)
		if err != nil || !(t > 0) || math.IsInf(t, 0) {
			writeError(w, http.StatusBadRequest, "t must be a positive number")
			return
		}
		res, status, err := s.rankAnswer(r.Context(), ep, answerKey{kind: 'r', t: t}, func() (*topk.RankResult, error) {
			return s.queryEngine(ep, false).ThresholdedRank(t)
		})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("X-Cache", status)
		writeJSON(w, http.StatusOK, RankResponse{T: t, SnapshotSeq: ep.seq, Records: ep.snap.Len(), Result: res})
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil || k < 1 {
		writeError(w, http.StatusBadRequest, "k must be >= 1")
		return
	}
	if ep.snap.Len() == 0 {
		// rankquery runs the core pipeline, which needs records; answer
		// the empty epoch directly, outside the answer cache.
		w.Header().Set("X-Cache", cacheBypass)
		writeJSON(w, http.StatusOK, RankResponse{K: k, SnapshotSeq: ep.seq, Result: &topk.RankResult{}})
		return
	}
	ctx, root := s.traceCtx(r, "server.rank")
	if root != nil {
		root.Attr("k", float64(k))
	}
	start := time.Now()
	res, status, err := s.rankAnswer(ctx, ep, answerKey{kind: 'k', k: k}, func() (*topk.RankResult, error) {
		if len(s.cfg.ShardPeers) > 0 {
			pd, perr := s.shardedPruned(ctx, ep, k)
			if perr != nil {
				return nil, fmt.Errorf("shard peers: %w", perr)
			}
			return s.queryEngine(ep, false).TopKRankFrom(pd, k)
		}
		return s.queryEngine(ep, false).TopKRankCtx(ctx, k)
	})
	root.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if s.logger != nil && root != nil {
		s.logger.Info("rank query", "k", k, "snapshot_seq", ep.seq, "cache", status,
			"seconds", time.Since(start).Seconds(),
			"trace", root.TraceID().String(), "span", root.SpanID().String())
	}
	w.Header().Set("X-Cache", status)
	writeJSON(w, http.StatusOK, RankResponse{K: k, SnapshotSeq: ep.seq, Records: ep.snap.Len(), Result: res})
}

// rankAnswer answers one /rank form through the answer cache: hits
// return the memoised result, coalesced requests wait for the in-flight
// identical query, and misses run compute and memoise its outcome.
func (s *Server) rankAnswer(ctx context.Context, ep *epoch, key answerKey, compute func() (*topk.RankResult, error)) (*topk.RankResult, string, error) {
	status, ent := s.beginAnswer(ep.seq, key, false)
	switch status {
	case cacheHit:
		return ent.rank, status, nil
	case cacheCoalesced:
		select {
		case <-ent.done:
			return ent.rank, status, ent.err
		case <-ctx.Done():
			return nil, status, fmt.Errorf("canceled while waiting for coalesced query")
		}
	}
	res, err := compute()
	if status == cacheMiss {
		ent.rank, ent.err = res, err
		s.answers.finish(ep.seq, key, ent)
	}
	return res, status, err
}

// computeExact runs the exact TopK pipeline over an epoch — the shared
// compute step of the /topk miss path and hybrid mode's background
// refresh. The returned bool marks a shard-peer failure (surfaced as
// 502 rather than 500).
func (s *Server) computeExact(ctx context.Context, ep *epoch, k, rr int, explain bool) (*topk.Result, bool, error) {
	if len(s.cfg.ShardPeers) > 0 {
		pd, err := s.shardedPruned(ctx, ep, k)
		if err != nil {
			return nil, true, fmt.Errorf("shard peers: %w", err)
		}
		res, err := s.queryEngine(ep, explain).TopKFromCtx(ctx, pd, k, rr)
		return res, false, err
	}
	res, err := s.queryEngine(ep, explain).TopKCtx(ctx, k, rr)
	return res, false, err
}

// queryEngine builds the per-query engine over an epoch's frozen
// dataset. Engines are cheap stateless wrappers; every query gets a
// fresh one so epochs can be garbage collected as they age out.
// explain turns on the engine's per-query EXPLAIN report (the
// ?explain=1 form); the query's spans land in the server's tracer via
// the traced request context, not via Config.Tracer.
func (s *Server) queryEngine(ep *epoch, explain bool) *topk.Engine {
	cfg := s.cfg.Engine
	cfg.Metrics = s.metrics
	cfg.Explain = explain
	// Incremental serving (INCREMENTAL.md): seed Algorithm 2 with the
	// epoch's maintained level-1 collapse and its frozen bound-verdict
	// estimator, so a query pays only the K-dependent phases plus any
	// component work not already cached. Byte-identity with the batch
	// pipeline is pinned by the differential tests; only collapse eval
	// counters legitimately differ (the maintained collapse amortised
	// them at ingest).
	cfg.StartGroups = ep.snap.Groups()
	cfg.Bound = ep.snap.BoundEstimator()
	return topk.New(ep.snap.Dataset(), s.cfg.Levels, s.cfg.Scorer, cfg)
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	// OK is always true when the handler answers at all.
	OK bool `json:"ok"`
	// Status is "ok", or "degraded" while an SLO fast-burn threshold is
	// tripped (see slo.go). Observational: a degraded server still
	// answers everything; load balancers may use it to drain the node.
	Status string `json:"status"`
	// Records is the write-side record count.
	Records int `json:"records"`
	// SnapshotSeq is the published epoch's sequence number.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotRecords is the record count visible to queries.
	SnapshotRecords int `json:"snapshot_records"`
	// SnapshotAgeSeconds is the published epoch's age.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// Version is the module build version (runtime/debug.ReadBuildInfo;
	// "(devel)" for go-run binaries).
	Version string `json:"version"`
	// GoVersion is the Go toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// UptimeSeconds is the time since the Server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// buildInfoOnce resolves the binary's build metadata once per process.
var buildInfoOnce = sync.OnceValues(func() (string, string) {
	version, goVersion := "unknown", runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
	}
	return version, goVersion
})

// BuildInfo reports the module build version and Go toolchain baked
// into the running binary — the same values /healthz serves and topkd
// logs at startup.
func BuildInfo() (version, goVersion string) { return buildInfoOnce() }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ep := s.epoch.Load()
	status := "ok"
	if s.slo.degraded() {
		status = "degraded"
	}
	version, goVersion := BuildInfo()
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:                 true,
		Status:             status,
		Records:            s.Records(),
		SnapshotSeq:        ep.seq,
		SnapshotRecords:    ep.snap.Len(),
		SnapshotAgeSeconds: time.Since(ep.snap.Taken()).Seconds(),
		Version:            version,
		GoVersion:          goVersion,
		UptimeSeconds:      time.Since(s.started).Seconds(),
	})
}

// LatencySummary condenses one endpoint's latency histogram for the
// /metrics body. Quantiles are log2-bucket estimates (within one
// octave, see obs.Dist.Quantile).
type LatencySummary struct {
	// Count is the number of completed requests.
	Count int64 `json:"count"`
	// P50Seconds and P99Seconds estimate the latency quantiles.
	P50Seconds float64 `json:"p50_seconds"`
	// P99Seconds estimates the 99th-percentile latency.
	P99Seconds float64 `json:"p99_seconds"`
	// MaxSeconds is the slowest completed request.
	MaxSeconds float64 `json:"max_seconds"`
}

// MetricsResponse is the GET /metrics body: serving-level gauges, the
// per-endpoint latency summaries, and the full obs snapshot (every
// server.*, core.*, engine.*, stream.* metric recorded since start).
type MetricsResponse struct {
	// Records is the write-side record count.
	Records int `json:"records"`
	// SnapshotSeq is the published epoch's sequence number.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotAgeSeconds is the published epoch's age.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// Latency summarises the server.http.<endpoint>.seconds histograms.
	Latency map[string]LatencySummary `json:"latency,omitempty"`
	// Phases is the full metrics snapshot in the obs JSON shape.
	Phases *obs.Snapshot `json:"phases"`
}

// latencyEndpoints are the endpoints /metrics summarises.
var latencyEndpoints = []string{"ingest", "refresh", "topk", "rank"}

// metricsFormat resolves the /metrics response format: an explicit
// ?format=json|prom wins; otherwise the Accept header negotiates (a
// text/plain or OpenMetrics preference selects the Prometheus text
// exposition, anything else the pre-existing JSON shape).
func metricsFormat(r *http.Request) (string, error) {
	switch format := r.URL.Query().Get("format"); format {
	case "json", "prom":
		return format, nil
	case "":
	default:
		return "", fmt.Errorf("format must be json or prom, got %q", format)
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics") {
		return "prom", nil
	}
	return "json", nil
}

// refreshHealthGauges brings every point-in-time gauge current right
// before a scrape: epoch/record state, uptime, checkpoint age, the
// runtime sampler, and the SLO burn rates. Counters and histograms are
// cumulative and need no refresh.
func (s *Server) refreshHealthGauges() {
	ep := s.epoch.Load()
	s.metrics.Gauge("server.snapshot.seq", float64(ep.seq))
	s.metrics.Gauge("server.snapshot.age_seconds", time.Since(ep.snap.Taken()).Seconds())
	s.metrics.Gauge("server.records", float64(s.Records()))
	s.metrics.Gauge("server.uptime_seconds", time.Since(s.started).Seconds())
	if s.wal != nil {
		// Age of the newest completed checkpoint; before the first one,
		// the server's age (replay cost grows with this number either
		// way).
		since := time.Since(s.started)
		if ts := s.lastCheckpoint.Load(); ts != 0 {
			since = time.Since(time.Unix(0, ts))
		}
		s.metrics.Gauge("wal.checkpoint.age_seconds", since.Seconds())
	}
	s.rtSampler.Sample()
	s.slo.refreshGauges()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format, err := metricsFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.refreshHealthGauges()
	// Scrapes are point-in-time by definition; an intermediary replaying
	// a cached body would invert every rate() over it.
	w.Header().Set("Cache-Control", "no-store")
	if format == "prom" {
		w.Header().Set("Content-Type", obs.PromContentType)
		w.WriteHeader(http.StatusOK)
		// A write failure here means the scraper hung up; nothing to do.
		s.metrics.WritePrometheus(w)
		return
	}
	ep := s.epoch.Load()
	snap := s.metrics.Snapshot()
	resp := MetricsResponse{
		Records:            s.Records(),
		SnapshotSeq:        ep.seq,
		SnapshotAgeSeconds: time.Since(ep.snap.Taken()).Seconds(),
		Phases:             snap,
	}
	for _, name := range latencyEndpoints {
		d, ok := snap.Observations["server.http."+name+".seconds"]
		if !ok {
			continue
		}
		if resp.Latency == nil {
			resp.Latency = make(map[string]LatencySummary, len(latencyEndpoints))
		}
		resp.Latency[name] = LatencySummary{
			Count:      d.Count,
			P50Seconds: d.Quantile(0.50),
			P99Seconds: d.Quantile(0.99),
			MaxSeconds: d.Max,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
	// Code is a stable machine-readable discriminator, present on the
	// typed request-validation failures ("unknown_param", "bad_param",
	// "bad_mode", "sketch_disabled"); absent elsewhere so pre-existing
	// error bodies are unchanged.
	Code string `json:"code,omitempty"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}

func writeTypedError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("%s must be an integer, got %q", name, raw)
	}
	return v, nil
}
