package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"topkdedup/internal/obs"
)

// TestSLOTrackerBurnRates drives the tracker with a fake clock through
// the burn-rate arithmetic: good traffic burns nothing, concentrated
// failures trip the fast window, and both windows forget on schedule.
func TestSLOTrackerBurnRates(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	cfg := SLOConfig{
		Objectives: []SLOObjective{{
			Endpoint: "topk", LatencyTarget: time.Second, LatencyQuantile: 0.99, Availability: 0.99,
		}},
		FastWindow: time.Minute,
		SlowWindow: 10 * time.Minute,
		now:        func() time.Time { return now },
	}
	tr := newSLOTracker(cfg, nil)

	for i := 0; i < 100; i++ {
		tr.record("topk", http.StatusOK, time.Millisecond)
	}
	tr.record("ignored", http.StatusInternalServerError, 0) // no objective: dropped
	if tr.degraded() {
		t.Fatal("all-good traffic reported degraded")
	}
	rep := tr.report(&obs.Snapshot{})
	if st := rep.Objectives[0]; st.FastBurnRate != 0 || st.SlowWindowTotal != 100 || st.SlowWindowBad != 0 {
		t.Fatalf("good traffic: %+v", st)
	}

	// 100 bad among 200 total in the fast window: burn = 0.5/0.01 = 50,
	// past the default 14.4 threshold. Bad means 5xx, 429, or slow.
	for i := 0; i < 98; i++ {
		tr.record("topk", http.StatusInternalServerError, 0)
	}
	tr.record("topk", http.StatusTooManyRequests, 0)
	tr.record("topk", http.StatusOK, 2*time.Second) // slow success is bad too
	if !tr.degraded() {
		t.Fatal("50x budget burn not reported degraded")
	}
	rep = tr.report(&obs.Snapshot{})
	if st := rep.Objectives[0]; !st.Tripped || st.FastBurnRate < 14.4 || st.SlowWindowBad != 100 {
		t.Fatalf("burning traffic: %+v", st)
	}
	if !rep.Degraded {
		t.Fatal("report.Degraded false while an objective is tripped")
	}

	// Two minutes later the fast window has forgotten the burst but the
	// slow window still remembers it.
	now = now.Add(2 * time.Minute)
	if tr.degraded() {
		t.Fatal("degradation outlived the fast window")
	}
	rep = tr.report(&obs.Snapshot{})
	if st := rep.Objectives[0]; st.FastBurnRate != 0 || st.SlowWindowBad != 100 {
		t.Fatalf("after fast window: %+v", st)
	}

	// Past the slow window everything is forgotten.
	now = now.Add(20 * time.Minute)
	rep = tr.report(&obs.Snapshot{})
	if st := rep.Objectives[0]; st.SlowWindowTotal != 0 || st.SlowBurnRate != 0 {
		t.Fatalf("after slow window: %+v", st)
	}

	// A nil tracker (SLO disabled) is inert everywhere.
	var nilTr *sloTracker
	nilTr.record("topk", http.StatusInternalServerError, 0)
	nilTr.refreshGauges()
	if nilTr.degraded() {
		t.Fatal("nil tracker degraded")
	}
}

// TestSLODegradedHealthz wires the tracker through real HTTP: with an
// unmeetable latency target every request is bad, so /healthz degrades,
// /slo reports the tripped objective, and the slo.* gauges publish —
// while answers keep flowing untouched.
func TestSLODegradedHealthz(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.SLO = SLOConfig{LatencyTarget: time.Nanosecond, FastBurnThreshold: 2}
	})
	ingestBatch(t, ts, names("alice", "alice", "bob"))
	for i := 0; i < 5; i++ {
		resp, body := get(t, ts, "/topk?k=2")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded serving must still answer: %d: %s", resp.StatusCode, body)
		}
	}

	_, body := get(t, ts, "/healthz")
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Status != "degraded" {
		t.Fatalf("healthz under burn: %+v", h)
	}
	if h.Version == "" || h.GoVersion == "" || h.UptimeSeconds < 0 {
		t.Fatalf("healthz build info missing: %+v", h)
	}

	resp, body := get(t, ts, "/slo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/slo: status %d: %s", resp.StatusCode, body)
	}
	var rep SLOResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatalf("/slo not degraded: %s", body)
	}
	tripped := false
	for _, st := range rep.Objectives {
		if st.Endpoint == "topk" && st.Tripped && st.FastBurnRate >= rep.FastBurnThreshold {
			tripped = true
		}
	}
	if !tripped {
		t.Fatalf("topk objective not tripped: %s", body)
	}
	// /slo refreshed the gauges on its way out.
	if v, ok := srv.Metrics().GaugeValue("slo.degraded"); !ok || v != 1 {
		t.Fatalf("slo.degraded gauge = %v (set=%v), want 1", v, ok)
	}
	if v, _ := srv.Metrics().GaugeValue("slo.topk.burn_rate_fast"); v < 2 {
		t.Fatal("slo.topk.burn_rate_fast gauge below threshold despite trip")
	}
	if srv.Metrics().CounterValue("slo.topk.bad") == 0 {
		t.Fatal("slo.topk.bad counter not incremented")
	}
}

// TestSLORecovery checks the happy path end to end: default objectives,
// fast requests, nothing trips.
func TestSLORecovery(t *testing.T) {
	_, ts := newTestServer(t, nil)
	ingestBatch(t, ts, names("a", "b", "c"))
	for i := 0; i < 5; i++ {
		get(t, ts, "/topk?k=1")
	}
	_, body := get(t, ts, "/healthz")
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthy server status %q", h.Status)
	}
	_, body = get(t, ts, "/slo")
	var rep SLOResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Degraded || len(rep.Objectives) != len(latencyEndpoints) {
		t.Fatalf("healthy /slo: %s", body)
	}
}

// TestSLODisabled pins the opt-out: /slo answers 404, /healthz never
// degrades, and no slo.* metrics appear.
func TestSLODisabled(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.SLO = SLOConfig{Disable: true}
	})
	ingestBatch(t, ts, names("a"))
	get(t, ts, "/topk?k=1")
	resp, _ := get(t, ts, "/slo")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/slo with SLO disabled: want 404, got %d", resp.StatusCode)
	}
	_, body := get(t, ts, "/healthz")
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("disabled SLO degraded healthz: %+v", h)
	}
	get(t, ts, "/metrics") // refreshes gauges; must not create slo.* rows
	snap := srv.Metrics().Snapshot()
	for name := range snap.Gauges {
		if len(name) >= 4 && name[:4] == "slo." {
			t.Fatalf("slo gauge %q present with SLO disabled", name)
		}
	}
}
