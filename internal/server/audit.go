// The continuous accuracy auditor (OBSERVABILITY.md "Continuous
// accuracy auditing"): at Config.AuditRate, a served approx/hybrid
// answer is re-executed against the exact path in the background — off
// the request path, through the epoch answer cache, bounded by the same
// slot pool as foreground queries (an auditor that cannot get a slot
// skips rather than queues, so it can never starve serving). Every
// audited entry is checked against the epoch's sufficient-closure
// component weights: the sketch contract says the true accumulated
// weight lies in [Lower, Count], so a component weight outside that
// interval is a containment violation — counted, and logged via slog
// with the serving query's trace ID so EXPLAIN can reconstruct it.
package server

import (
	"context"
	"time"

	topk "topkdedup"
)

// auditJob captures one served approximate answer for background
// re-execution. The entries slice is the response's own (immutable once
// written).
type auditJob struct {
	ep      *epoch
	mode    string
	traceID string
	k, r    int
	entries []ApproxEntry
}

// maybeAudit samples served approx/hybrid answers at the configured
// rate (deterministic 1-in-N on the served-answer sequence) and spawns
// the background audit for the selected ones. Registered on s.bg so
// Close drains in-flight audits before releasing the WAL.
func (s *Server) maybeAudit(job auditJob) {
	if s.auditEvery == 0 {
		return
	}
	if (s.auditSeq.Add(1)-1)%s.auditEvery != 0 {
		return
	}
	s.bg.Add(1)
	go s.runAudit(job)
}

// runAudit re-executes one sampled answer exactly and scores the served
// entries. The exact query goes through the epoch answer cache, so an
// audit both benefits from and warms the cache the foreground exact
// tier uses; the slot-pool acquire is non-blocking — under saturation
// the audit is dropped (audit.skipped) instead of competing with
// foreground requests.
func (s *Server) runAudit(job auditJob) {
	defer s.bg.Done()
	select {
	case s.sem <- struct{}{}:
	default:
		s.metrics.Count("audit.skipped", 1)
		return
	}
	defer func() { <-s.sem }()
	start := time.Now()
	s.metrics.Count("audit.samples", 1)

	key := answerKey{kind: 't', k: job.k, r: job.r}
	status, ent := s.beginAnswer(job.ep.seq, key, false)
	var res *topk.Result
	var err error
	switch status {
	case cacheHit:
		res, err = ent.topk, ent.err
	case cacheCoalesced:
		<-ent.done
		res, err = ent.topk, ent.err
	default: // cacheMiss computes and memoises; cacheBypass just computes
		res, _, err = s.computeExact(context.Background(), job.ep, job.k, job.r, false)
		if status == cacheMiss {
			ent.topk, ent.err = res, err
			s.answers.finish(job.ep.seq, key, ent)
		}
	}
	if err != nil || res == nil {
		s.metrics.Count("audit.errors", 1)
		return
	}

	// Containment truth: the epoch's sufficient-closure component
	// weights — the quantity the sketch tracks and bounds. The final
	// exact answer (deeper levels + scorer may merge further) supplies
	// the per-entity observed-error distribution instead.
	closure := make(map[int]float64)
	for _, g := range job.ep.snap.Groups() {
		for _, id := range g.Members {
			closure[id] = g.Weight
		}
	}
	var final map[int]float64
	if len(res.Answers) > 0 {
		final = make(map[int]float64)
		for _, g := range res.Answers[0].Groups {
			for _, id := range g.Records {
				final[id] = g.Weight
			}
		}
	}
	var within, violated int64
	for _, e := range job.entries {
		if exact, ok := final[e.Rep]; ok {
			diff := exact - e.Count
			if diff < 0 {
				diff = -diff
			}
			s.metrics.Observe("audit.observed_error", diff)
		}
		truth, ok := closure[e.Rep]
		if !ok {
			// The component vanished from the epoch's closure (possible
			// only on a corrupted view); count it as a violation too.
			truth = -1
		}
		// Tolerance for float summation order, matching verifySketch.
		eps := 1e-9 * e.Count
		if eps < 1e-9 {
			eps = 1e-9
		}
		if truth >= 0 && truth <= e.Count+eps && truth >= e.Lower-eps {
			within++
			continue
		}
		violated++
		if s.logger != nil {
			s.logger.Warn("audit containment violated",
				"trace", job.traceID, "mode", job.mode, "snapshot_seq", job.ep.seq,
				"rep", e.Rep, "count", e.Count, "lower", e.Lower, "err", e.Err,
				"exact", truth)
		}
	}
	if within != 0 {
		s.metrics.Count("audit.containment.ok", within)
	}
	if violated != 0 {
		s.metrics.Count("audit.containment.violated", violated)
	}
	s.metrics.Observe("audit.seconds", time.Since(start).Seconds())
}
