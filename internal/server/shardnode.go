package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	topk "topkdedup"
	"topkdedup/internal/shard"
)

// maxShardSessions caps how many coordinator sessions one node holds at
// once; loading past the cap evicts the least recently used session
// (coordinators that lose theirs get a clean "unknown session" error
// and can re-load).
const maxShardSessions = 8

// shardSession is one coordinator's loaded partition. The coordinator
// serialises calls within a session; the per-session mutex makes a
// misbehaving client fail safe rather than race the worker.
type shardSession struct {
	mu       sync.Mutex
	worker   *shard.Worker
	lastUsed time.Time
}

// shardedPruned runs one query's pruning phases over the configured
// shard peers: partition the epoch's snapshot, ship the parts, drive
// the bound-exchange protocol, gather the survivors. The result feeds
// Engine.TopKFrom / TopKRankFrom. When ctx carries a trace span the
// whole exchange — including each peer's handler spans, stitched back
// after the run — lands in that trace.
func (s *Server) shardedPruned(ctx context.Context, ep *epoch, k int) (*topk.PrunedResult, error) {
	pd, _, err := shard.RunHTTPCtx(ctx, ep.snap.Dataset(), nil, s.cfg.Levels, s.cfg.ShardPeers, s.shardClient, shard.Options{
		K: k, PrunePasses: s.cfg.Engine.PrunePasses, Workers: s.cfg.Engine.Workers, Sink: s.metrics,
		Replicate: s.cfg.ShardReplicate, Replica: s.cfg.ShardReplica,
		WrapTransport: s.cfg.wrapShardTransport,
	})
	return pd, err
}

// getShardSession looks a session up and refreshes its LRU stamp.
func (s *Server) getShardSession(id string) (*shardSession, error) {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	ss, ok := s.shardSessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown shard session %q (evicted or never loaded)", id)
	}
	ss.lastUsed = time.Now()
	return ss, nil
}

// handleShardLoad accepts a coordinator's partition (shard.LoadRequest),
// builds the session's worker against this node's own levels, and
// registers it, evicting the least recently used session past the cap.
func (s *Server) handleShardLoad(w http.ResponseWriter, r *http.Request) {
	_, sp := s.shardSpan(r, "shard.worker.load")
	var req shard.LoadRequest
	body := http.MaxBytesReader(w, r.Body, 256<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		sp.End()
		writeError(w, http.StatusBadRequest, "bad load body: "+err.Error())
		return
	}
	if req.Session == "" {
		sp.End()
		writeError(w, http.StatusBadRequest, "session is required")
		return
	}
	worker, err := shard.NewWorkerFromLoad(&req, s.cfg.Schema, s.cfg.Levels, s.metrics)
	if err != nil {
		sp.End()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.shardMu.Lock()
	if _, ok := s.shardSessions[req.Session]; !ok && len(s.shardSessions) >= maxShardSessions {
		oldest, oldestAt := "", time.Time{}
		for id, ss := range s.shardSessions {
			if oldest == "" || ss.lastUsed.Before(oldestAt) {
				oldest, oldestAt = id, ss.lastUsed
			}
		}
		delete(s.shardSessions, oldest)
		s.metrics.Count("server.shard.sessions.evicted", 1)
	}
	s.shardSessions[req.Session] = &shardSession{worker: worker, lastUsed: time.Now()}
	active := len(s.shardSessions)
	s.shardMu.Unlock()
	s.metrics.Count("server.shard.sessions.opened", 1)
	s.metrics.Gauge("server.shard.sessions.active", float64(active))
	sp.Attr("records", float64(len(req.Records)))
	sp.End()
	writeJSON(w, http.StatusOK, shard.LoadResponse{Records: len(req.Records), Groups: len(req.Groups)})
}

func (s *Server) handleShardCollapse(w http.ResponseWriter, r *http.Request) {
	_, sp := s.shardSpan(r, "shard.worker.collapse")
	var req shard.CollapseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		sp.End()
		writeError(w, http.StatusBadRequest, "bad collapse body: "+err.Error())
		return
	}
	if req.Level < 0 || req.Level >= len(s.cfg.Levels) {
		sp.End()
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("level %d out of range for %d configured levels", req.Level, len(s.cfg.Levels)))
		return
	}
	ss, err := s.getShardSession(req.Session)
	if err != nil {
		sp.End()
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	ss.mu.Lock()
	metas, before, evals, hits := ss.worker.Collapse(req.Level)
	ss.mu.Unlock()
	sp.End()
	writeJSON(w, http.StatusOK, shard.CollapseResponse{Groups: metas, Evals: evals, Hits: hits, Before: before})
}

func (s *Server) handleShardBounds(w http.ResponseWriter, r *http.Request) {
	_, sp := s.shardSpan(r, "shard.worker.bounds")
	var req shard.BoundsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		sp.End()
		writeError(w, http.StatusBadRequest, "bad bounds body: "+err.Error())
		return
	}
	ss, err := s.getShardSession(req.Session)
	if err != nil {
		sp.End()
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	defer sp.End()
	switch req.Op {
	case shard.BoundsScan:
		flags, evals, hits := ss.worker.BoundScan(req.Count)
		writeJSON(w, http.StatusOK, shard.BoundsResponse{Independent: flags, Evals: evals, Hits: hits})
	case shard.BoundsCPN:
		writeJSON(w, http.StatusOK, shard.BoundsResponse{CPN: ss.worker.BoundCPN(req.Prefix)})
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown bounds op %q", req.Op))
	}
}

func (s *Server) handleShardPrune(w http.ResponseWriter, r *http.Request) {
	ctx, sp := s.shardSpan(r, "shard.worker.prune")
	var req shard.PruneRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		sp.End()
		writeError(w, http.StatusBadRequest, "bad prune body: "+err.Error())
		return
	}
	ss, err := s.getShardSession(req.Session)
	if err != nil {
		sp.End()
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	defer sp.End()
	switch req.Op {
	case shard.PruneStart:
		writeJSON(w, http.StatusOK, shard.PruneResponse{Alive: ss.worker.PruneStart(req.M)})
	case shard.PrunePass:
		pruned, evals, hits := ss.worker.PrunePass(ctx)
		writeJSON(w, http.StatusOK, shard.PruneResponse{Alive: ss.worker.AliveCount(), Pruned: pruned, Evals: evals, Hits: hits})
	case shard.PruneFinish:
		groups := ss.worker.PruneFinish()
		writeJSON(w, http.StatusOK, shard.PruneResponse{Groups: groups, Alive: ss.worker.AliveCount()})
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown prune op %q", req.Op))
	}
}

func (s *Server) handleShardGroups(w http.ResponseWriter, r *http.Request) {
	_, sp := s.shardSpan(r, "shard.worker.groups")
	var req shard.GroupsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		sp.End()
		writeError(w, http.StatusBadRequest, "bad groups body: "+err.Error())
		return
	}
	ss, err := s.getShardSession(req.Session)
	if err != nil {
		sp.End()
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	ss.mu.Lock()
	groups := ss.worker.Groups()
	ss.mu.Unlock()
	sp.End()
	writeJSON(w, http.StatusOK, shard.GroupsResponse{Groups: groups})
}

func (s *Server) handleShardClose(w http.ResponseWriter, r *http.Request) {
	_, sp := s.shardSpan(r, "shard.worker.close")
	var req shard.CloseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		sp.End()
		writeError(w, http.StatusBadRequest, "bad close body: "+err.Error())
		return
	}
	s.shardMu.Lock()
	_, existed := s.shardSessions[req.Session]
	delete(s.shardSessions, req.Session)
	active := len(s.shardSessions)
	s.shardMu.Unlock()
	s.metrics.Gauge("server.shard.sessions.active", float64(active))
	sp.End()
	writeJSON(w, http.StatusOK, shard.CloseResponse{Closed: existed})
}
