package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	topk "topkdedup"
	"topkdedup/internal/predicate"
	"topkdedup/internal/records"
)

// Toy domain shared with the stream/core tests: S = exact name match,
// N = shared first letter, scorer = signed common-prefix similarity.
// All pure functions — safe for any concurrency.
func toyLevels() []topk.Level {
	s := predicate.P{
		Name: "S",
		Eval: func(a, b *records.Record) bool {
			return a.Field("name") != "" && a.Field("name") == b.Field("name")
		},
		Keys: func(r *records.Record) []string { return []string{"s:" + r.Field("name")} },
	}
	n := predicate.P{
		Name: "N",
		Eval: func(a, b *records.Record) bool {
			na, nb := a.Field("name"), b.Field("name")
			return len(na) > 0 && len(nb) > 0 && na[0] == nb[0]
		},
		Keys: func(r *records.Record) []string {
			v := r.Field("name")
			if v == "" {
				return nil
			}
			return []string{"n:" + v[:1]}
		},
	}
	return []predicate.Level{{Sufficient: s, Necessary: n}}
}

func toyScorer() topk.PairScorer {
	return topk.PairScorerFunc(func(a, b *records.Record) float64 {
		na, nb := a.Field("name"), b.Field("name")
		common := 0
		for common < len(na) && common < len(nb) && na[common] == nb[common] {
			common++
		}
		return float64(2*common) - 6 // positive for >=3 common prefix chars
	})
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Schema: []string{"name"},
		Levels: toyLevels(),
		Scorer: toyScorer(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func ingestBatch(t *testing.T, ts *httptest.Server, recs []IngestRecord) IngestResponse {
	t.Helper()
	resp := postJSON(t, ts, "/ingest", IngestRequest{Records: recs})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("ingest decode: %v", err)
	}
	return out
}

func postJSON(t *testing.T, ts *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func names(ns ...string) []IngestRecord {
	out := make([]IngestRecord, len(ns))
	for i, n := range ns {
		out[i] = IngestRecord{Values: []string{n}}
	}
	return out
}

func TestIngestThenTopK(t *testing.T) {
	_, ts := newTestServer(t, nil)
	ir := ingestBatch(t, ts, names("alice", "alice", "alice", "bob", "bob", "carol"))
	if !ir.Published || ir.Records != 6 || ir.SnapshotSeq != 1 {
		t.Fatalf("unexpected ingest response: %+v", ir)
	}
	resp, body := get(t, ts, "/topk?k=2&r=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk: status %d: %s", resp.StatusCode, body)
	}
	var out TopKResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.SnapshotSeq != 1 || out.Records != 6 {
		t.Fatalf("topk answered from wrong epoch: %+v", out)
	}
	if len(out.Result.Answers) == 0 || len(out.Result.Answers[0].Groups) != 2 {
		t.Fatalf("want 2 answer groups, got %+v", out.Result)
	}
	top := out.Result.Answers[0].Groups[0]
	if top.Weight != 3 {
		t.Fatalf("top group should be the 3 alices, got weight %v", top.Weight)
	}
}

func TestRankEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)
	ingestBatch(t, ts, names("alice", "alice", "alice", "bob", "bob", "xavier"))
	resp, body := get(t, ts, "/rank?k=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank: status %d: %s", resp.StatusCode, body)
	}
	var out RankResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Entries) == 0 {
		t.Fatal("rank returned no entries")
	}
	resp, body = get(t, ts, "/rank?t=1.5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("thresholded rank: status %d: %s", resp.StatusCode, body)
	}
	var thr RankResponse
	if err := json.Unmarshal(body, &thr); err != nil {
		t.Fatal(err)
	}
	for _, e := range thr.Result.Entries {
		if e.Upper < e.Group.Weight {
			t.Fatalf("entry upper bound below weight: %+v", e)
		}
	}
}

func TestQueriesOnEmptyServer(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, path := range []string{"/topk?k=3", "/rank?k=3", "/rank?t=2", "/healthz", "/metrics"} {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s on empty server: status %d: %s", path, resp.StatusCode, body)
		}
		if !json.Valid(body) {
			t.Fatalf("%s: invalid JSON: %s", path, body)
		}
	}
}

func TestRefreshPolicyPerN(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.RefreshEvery = 5 })
	ir := ingestBatch(t, ts, names("a1", "a2"))
	if ir.Published || ir.SnapshotSeq != 0 {
		t.Fatalf("2 < 5 records should not publish: %+v", ir)
	}
	// Queries still see the empty epoch 0.
	_, body := get(t, ts, "/topk?k=1")
	var out TopKResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Records != 0 || out.SnapshotSeq != 0 {
		t.Fatalf("query should see the stale epoch: %+v", out)
	}
	ir = ingestBatch(t, ts, names("a3", "a4", "a5"))
	if !ir.Published || ir.SnapshotSeq != 1 {
		t.Fatalf("5th record should publish: %+v", ir)
	}
	_, body = get(t, ts, "/topk?k=1")
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Records != 5 || out.SnapshotSeq != 1 {
		t.Fatalf("query should see the new epoch: %+v", out)
	}
}

func TestRefreshPolicyManual(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.RefreshEvery = -1 })
	ingestBatch(t, ts, names("a", "b", "c"))
	_, body := get(t, ts, "/topk?k=1")
	var out TopKResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Records != 0 {
		t.Fatalf("manual refresh: query saw unpublished records: %+v", out)
	}
	resp := postJSON(t, ts, "/refresh", struct{}{})
	var rf RefreshResponse
	if err := json.NewDecoder(resp.Body).Decode(&rf); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rf.SnapshotSeq != 1 || rf.Records != 3 {
		t.Fatalf("refresh response: %+v", rf)
	}
	_, body = get(t, ts, "/topk?k=1")
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Records != 3 || out.SnapshotSeq != 1 {
		t.Fatalf("after refresh, query should see 3 records: %+v", out)
	}
}

func TestIngestValidation(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatch = 3 })
	cases := []struct {
		name string
		body string
	}{
		{"not json", `nope`},
		{"empty batch", `{"records":[]}`},
		{"schema mismatch", `{"records":[{"values":["a","b"]}]}`},
		{"negative weight", `{"records":[{"weight":-1,"values":["a"]}]}`},
		{"oversized batch", `{"records":[{"values":["a"]},{"values":["b"]},{"values":["c"]},{"values":["d"]}]}`},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d: %s", tc.name, resp.StatusCode, body)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not well-formed: %s", tc.name, body)
		}
	}
	// A rejected batch must leave no partial state behind.
	srv, ts2 := newTestServer(t, nil)
	resp := postJSON(t, ts2, "/ingest", IngestRequest{Records: []IngestRecord{
		{Values: []string{"ok"}}, {Values: []string{"bad", "extra"}},
	}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed batch: want 400, got %d", resp.StatusCode)
	}
	if srv.Records() != 0 {
		t.Fatalf("rejected batch left %d records behind", srv.Records())
	}
}

func TestMethodFiltering(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := get(t, ts, "/ingest")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: want 405, got %d", resp.StatusCode)
	}
	resp2 := postJSON(t, ts, "/topk", struct{}{})
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /topk: want 405, got %d", resp2.StatusCode)
	}
}

func TestBadQueryParams(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, path := range []string{"/topk?k=zero", "/topk?k=0", "/topk?k=-3", "/rank?k=0", "/rank?t=-1", "/rank?t=nan"} {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d: %s", path, resp.StatusCode, body)
		}
	}
}

func TestBackpressure429(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.MaxInFlight = 2 })
	// Occupy every slot; the next request must be turned away at once.
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	defer func() { <-srv.sem; <-srv.sem }()
	resp, body := get(t, ts, "/topk?k=1")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 should carry Retry-After")
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body not well-formed: %s", body)
	}
	// Health stays reachable under saturation.
	resp, _ = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", resp.StatusCode)
	}
	if srv.Metrics().CounterValue("server.http.throttled") == 0 {
		t.Fatal("throttle counter not incremented")
	}
}

func TestRequestTimeout(t *testing.T) {
	// The slow predicate is the *necessary* one: ingest only evaluates
	// the sufficient predicate (distinct names, so zero evaluations) and
	// stays fast, while the query-time bound/prune phases stall and trip
	// the timeout.
	slow := predicate.P{
		Name: "N-slow",
		Eval: func(a, b *records.Record) bool {
			time.Sleep(20 * time.Millisecond)
			return true
		},
		Keys: func(r *records.Record) []string { return []string{"n"} }, // everything collides
	}
	s := toyLevels()[0].Sufficient
	_, ts := newTestServer(t, func(c *Config) {
		c.Levels = []predicate.Level{{Sufficient: s, Necessary: slow}}
		c.RequestTimeout = 5 * time.Millisecond
	})
	ingestBatch(t, ts, names("a1", "a2", "a3", "a4"))
	resp, body := get(t, ts, "/topk?k=2")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 on timeout, got %d: %s", resp.StatusCode, body)
	}
	if !json.Valid(body) {
		t.Fatalf("timeout body not JSON: %s", body)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, nil)
	ingestBatch(t, ts, names("alice", "alice", "bob"))
	get(t, ts, "/topk?k=2") // generate one query's latency sample

	_, body := get(t, ts, "/healthz")
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Records != 3 || h.SnapshotRecords != 3 || h.SnapshotSeq != 1 {
		t.Fatalf("healthz: %+v", h)
	}
	if h.SnapshotAgeSeconds < 0 {
		t.Fatalf("negative snapshot age: %v", h.SnapshotAgeSeconds)
	}

	_, body = get(t, ts, "/metrics")
	var m MetricsResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Records != 3 || m.SnapshotSeq != 1 {
		t.Fatalf("metrics header: %+v", m)
	}
	lat, ok := m.Latency["topk"]
	if !ok || lat.Count < 1 || lat.P50Seconds <= 0 || lat.P99Seconds < lat.P50Seconds {
		t.Fatalf("topk latency summary missing or malformed: %+v", m.Latency)
	}
	if m.Phases == nil || m.Phases.Counters["server.ingest.records"] != 3 {
		t.Fatalf("phases snapshot missing ingest counter: %+v", m.Phases)
	}
	if _, ok := m.Phases.Gauges["server.snapshot.seq"]; !ok {
		t.Fatal("snapshot gauges not refreshed")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Levels: toyLevels()}); err == nil {
		t.Fatal("missing schema should error")
	}
	if _, err := New(Config{Schema: []string{"name"}}); err == nil {
		t.Fatal("missing levels should error")
	}
}

func TestWeightedIngest(t *testing.T) {
	_, ts := newTestServer(t, nil)
	ingestBatch(t, ts, []IngestRecord{
		{Weight: 10, Values: []string{"whale"}},
		{Values: []string{"minnow"}}, // weight defaults to 1
		{Values: []string{"minnow"}},
	})
	_, body := get(t, ts, "/topk?k=1")
	var out TopKResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	g := out.Result.Answers[0].Groups[0]
	if g.Weight != 10 {
		t.Fatalf("weighted record should top the ranking: %+v", g)
	}
	if fmt.Sprint(out.Result.Answers[0].Groups) == "" {
		t.Fatal("unreachable")
	}
}
