package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	topk "topkdedup"
)

// counter reads one counter out of the server's metrics collector.
func counter(t *testing.T, srv *Server, name string) int64 {
	t.Helper()
	return srv.Metrics().Snapshot().Counters[name]
}

// queryWithCache issues one GET and returns the X-Cache header plus the
// raw result bytes.
func queryWithCache(t *testing.T, ts *httptest.Server, path string) (string, []byte) {
	t.Helper()
	resp, body := get(t, ts, path)
	if resp.StatusCode != 200 {
		t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
	}
	status := resp.Header.Get("X-Cache")
	if status == "" {
		t.Fatalf("%s: missing X-Cache header", path)
	}
	var raw struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("decode %s: %v: %s", path, err, body)
	}
	return status, raw.Result
}

// TestTopKCacheLifecycle pins the memoisation contract end to end: the
// first /topk of an epoch is a miss that runs the pipeline, a repeat is
// a hit that runs NO pipeline phase (the core.levels counter — one
// increment per executed pruning level — must not move), returns the
// identical result bytes, and a /refresh publish invalidates the whole
// cache.
func TestTopKCacheLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	ingestBatch(t, ts, names("alice", "alice", "alan", "bob", "bob", "bob", "carol"))

	status, first := queryWithCache(t, ts, "/topk?k=3&r=1")
	if status != cacheMiss {
		t.Fatalf("first query: X-Cache=%q, want %q", status, cacheMiss)
	}
	if got := counter(t, srv, "inc.cache.miss"); got != 1 {
		t.Fatalf("inc.cache.miss after first query: %d, want 1", got)
	}

	levelsBefore := counter(t, srv, "core.levels")
	boundBefore := counter(t, srv, "core.bound.evals")
	pruneBefore := counter(t, srv, "core.prune.evals")
	status, second := queryWithCache(t, ts, "/topk?k=3&r=1")
	if status != cacheHit {
		t.Fatalf("repeat query: X-Cache=%q, want %q", status, cacheHit)
	}
	if got := counter(t, srv, "inc.cache.hit"); got != 1 {
		t.Fatalf("inc.cache.hit after repeat: %d, want 1", got)
	}
	// The memoised answer must be served without re-running any
	// collapse/bound/prune work: every pipeline counter is frozen.
	if got := counter(t, srv, "core.levels"); got != levelsBefore {
		t.Fatalf("cache hit ran the pipeline: core.levels %d -> %d", levelsBefore, got)
	}
	if got := counter(t, srv, "core.bound.evals"); got != boundBefore {
		t.Fatalf("cache hit ran the bound phase: core.bound.evals %d -> %d", boundBefore, got)
	}
	if got := counter(t, srv, "core.prune.evals"); got != pruneBefore {
		t.Fatalf("cache hit ran the prune phase: core.prune.evals %d -> %d", pruneBefore, got)
	}
	if string(first) != string(second) {
		t.Fatalf("hit bytes differ from miss bytes:\nmiss: %s\nhit:  %s", first, second)
	}

	// Different parameters are a different key: still a miss on this epoch.
	if status, _ = queryWithCache(t, ts, "/topk?k=2&r=1"); status != cacheMiss {
		t.Fatalf("different k: X-Cache=%q, want %q", status, cacheMiss)
	}

	// Publishing a new epoch invalidates every memoised answer.
	resp := postJSON(t, ts, "/refresh", struct{}{})
	resp.Body.Close()
	if status, _ = queryWithCache(t, ts, "/topk?k=3&r=1"); status != cacheMiss {
		t.Fatalf("after refresh: X-Cache=%q, want %q", status, cacheMiss)
	}
}

// TestRankCacheLifecycle extends the memoisation contract to both /rank
// forms, and checks the two forms (and /topk) do not collide in the
// cache key space.
func TestRankCacheLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	ingestBatch(t, ts, names("alice", "alice", "alan", "bob", "bob", "bob", "carol"))

	for _, path := range []string{"/rank?k=3", "/rank?t=1.5", "/topk?k=3"} {
		if status, _ := queryWithCache(t, ts, path); status != cacheMiss {
			t.Fatalf("%s first query: X-Cache=%q, want %q", path, status, cacheMiss)
		}
		if status, _ := queryWithCache(t, ts, path); status != cacheHit {
			t.Fatalf("%s repeat query: X-Cache=%q, want %q", path, status, cacheHit)
		}
	}
	if hits := counter(t, srv, "inc.cache.hit"); hits != 3 {
		t.Fatalf("inc.cache.hit: %d, want 3", hits)
	}

	resp := postJSON(t, ts, "/refresh", struct{}{})
	resp.Body.Close()
	if status, _ := queryWithCache(t, ts, "/rank?k=3"); status != cacheMiss {
		t.Fatalf("rank after refresh: X-Cache=%q, want %q", status, cacheMiss)
	}
}

// TestExplainBypassesCache pins the ?explain=1 rule: explain queries
// need a fresh pipeline run for their report, so they neither read nor
// write the cache — and the cache state around them is untouched.
func TestExplainBypassesCache(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	ingestBatch(t, ts, names("alice", "alice", "bob"))

	for i := 0; i < 2; i++ {
		if status, _ := queryWithCache(t, ts, "/topk?k=2&explain=1"); status != cacheBypass {
			t.Fatalf("explain query %d: X-Cache=%q, want %q", i, status, cacheBypass)
		}
	}
	if got := counter(t, srv, "inc.cache.bypass"); got != 2 {
		t.Fatalf("inc.cache.bypass: %d, want 2", got)
	}
	// The explain runs did not seed the cache: a plain query misses, then hits.
	if status, _ := queryWithCache(t, ts, "/topk?k=2"); status != cacheMiss {
		t.Fatalf("plain query after explain: want miss, got %q", status)
	}
	if status, _ := queryWithCache(t, ts, "/topk?k=2"); status != cacheHit {
		t.Fatalf("plain repeat after explain: want hit, got %q", status)
	}
}

// TestAnswerCacheSingleflight exercises the cache's state machine
// directly: a second identical request that arrives while the first is
// still computing coalesces onto the same entry; once the owner
// finishes, later requests hit; errored computations are evicted rather
// than memoised; and requests from a stale epoch bypass.
func TestAnswerCacheSingleflight(t *testing.T) {
	c := answerCache{entries: make(map[answerKey]*answerEntry)}
	key := answerKey{kind: 't', k: 3, r: 1}

	status, owner := c.begin(1, key)
	if status != cacheMiss {
		t.Fatalf("first begin: %q, want %q", status, cacheMiss)
	}
	status, ent := c.begin(1, key)
	if status != cacheCoalesced || ent != owner {
		t.Fatalf("in-flight begin: %q (same entry %v), want coalesced on the owner's entry", status, ent == owner)
	}

	// A coalesced waiter blocks on done and observes the owner's result
	// after finish — the channel close is the publication barrier.
	res := &topk.Result{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ent.done
		if ent.topk != res || ent.err != nil {
			t.Errorf("waiter observed %v/%v, want the owner's result", ent.topk, ent.err)
		}
	}()
	owner.topk = res
	c.finish(1, key, owner)
	wg.Wait()

	if status, ent = c.begin(1, key); status != cacheHit || ent.topk != res {
		t.Fatalf("post-finish begin: %q, want hit with the memoised result", status)
	}

	// Stale epoch: bypass without touching the entries.
	if status, _ = c.begin(0, key); status != cacheBypass {
		t.Fatalf("stale-epoch begin: %q, want %q", status, cacheBypass)
	}
	if status, _ = c.begin(1, key); status != cacheHit {
		t.Fatal("bypass must not evict the current epoch's entries")
	}

	// Newer epoch: lazy flush, the old answer is gone.
	status, owner = c.begin(2, key)
	if status != cacheMiss {
		t.Fatalf("new-epoch begin: %q, want %q", status, cacheMiss)
	}

	// Errors are not memoised: finish evicts, the next request recomputes.
	owner.err = fmt.Errorf("boom")
	c.finish(2, key, owner)
	if status, _ = c.begin(2, key); status != cacheMiss {
		t.Fatalf("begin after errored finish: %q, want %q (errors must not be cached)", status, cacheMiss)
	}
	if c.size() != 1 {
		t.Fatalf("cache size: %d, want 1 (only the recomputing entry)", c.size())
	}
}

// TestAnswerCacheHitNoAllocs is the alloc-regression smoke for the hot
// serving path: resolving a memoised answer must not allocate. ci.sh
// runs it in the short-mode smoke suite.
func TestAnswerCacheHitNoAllocs(t *testing.T) {
	c := answerCache{entries: make(map[answerKey]*answerEntry)}
	key := answerKey{kind: 't', k: 10, r: 2}
	_, owner := c.begin(7, key)
	owner.topk = &topk.Result{}
	c.finish(7, key, owner)
	allocs := testing.AllocsPerRun(1000, func() {
		status, ent := c.begin(7, key)
		if status != cacheHit || ent.topk == nil {
			t.Fatal("expected a hit")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit lookup allocates: %.1f allocs/op, want 0", allocs)
	}
}
