// Durability wiring: the server side of internal/wal. New opens the
// log, rebuilds the accumulator from the newest snapshot plus the WAL
// tail, and handleIngest/Seed append every accepted batch BEFORE it is
// applied (WAL-then-apply), so a crash at any instant recovers to a
// state byte-identical to an uninterrupted run — the crash-recovery
// property tests pin exactly that. See SERVING.md "Durability".
package server

import (
	"fmt"
	"time"

	topk "topkdedup"
	"topkdedup/internal/wal"
)

// openWAL opens Config.WALDir, replays the newest valid snapshot and
// the log tail behind it into the accumulator, and leaves the log open
// for the ingest path. No-op when durability is disabled. Called from
// New before the initial epoch is published, so recovered records are
// queryable immediately.
func (s *Server) openWAL() error {
	if s.cfg.WALDir == "" {
		return nil
	}
	opts := s.cfg.WALOptions
	opts.Sink = s.metrics
	l, err := wal.Open(s.cfg.WALDir, opts)
	if err != nil {
		return err
	}
	applied, recs, ok, err := l.LatestSnapshot()
	if err != nil {
		l.Close()
		return err
	}
	var from uint64
	if ok {
		for _, r := range recs {
			s.acc.Add(r.Weight, r.Truth, r.Values...)
		}
		s.recovered += len(recs)
		from = applied
	}
	if err := l.Replay(from, func(_ uint64, b wal.Batch) error {
		for _, r := range b {
			s.acc.Add(r.Weight, r.Truth, r.Values...)
		}
		s.recovered += len(b)
		return nil
	}); err != nil {
		l.Close()
		return err
	}
	s.wal = l
	return nil
}

// Recovered reports how many records boot recovery replayed from the
// WAL (snapshot + tail). Zero when durability is disabled or the log
// was empty. cmd/topkd uses it to skip file seeding after a restart.
func (s *Server) Recovered() int { return s.recovered }

// Checkpoint writes a WAL snapshot of the full durable state and prunes
// the segments it makes redundant, bounding the next boot's replay to
// the tail behind the snapshot. The accumulator state is captured under
// the write lock (so the snapshot lands exactly at a batch boundary)
// but encoded and written outside it, so ingest is never blocked on a
// disk write. No-op when durability is disabled. Safe for concurrent
// use; concurrent checkpoints serialise.
func (s *Server) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	s.mu.Lock()
	applied := s.wal.NextIndex()
	snap := s.acc.Snapshot()
	s.mu.Unlock()
	recs := walRecords(snap.Dataset(), s.cfg.Schema)
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err := s.wal.WriteSnapshot(applied, recs); err != nil {
		return err
	}
	if err := s.wal.PruneSegments(applied); err != nil {
		return err
	}
	// Feeds the wal.checkpoint.age_seconds health gauge.
	s.lastCheckpoint.Store(time.Now().UnixNano())
	return nil
}

// Close releases the server's durable resources: it stops the runtime
// sampler ticker, drains hybrid mode's background exact computations
// and in-flight audits, then closes the WAL's active segment and its
// background sync ticker. Safe when durability is disabled, and safe to
// call more than once (later calls re-close the WAL and report its
// error).
func (s *Server) Close() error {
	s.stopOnce.Do(func() {
		if s.rtStop != nil {
			close(s.rtStop)
		}
	})
	s.bg.Wait()
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// walRecords flattens a frozen dataset into WAL snapshot records, in
// insertion order — replaying them re-Adds exactly the original
// sequence, which is what makes recovery byte-identical.
func walRecords(d *topk.Dataset, schema []string) []wal.Record {
	recs := make([]wal.Record, len(d.Recs))
	for i, r := range d.Recs {
		values := make([]string, len(schema))
		for j, f := range schema {
			values[j] = r.Fields[f]
		}
		recs[i] = wal.Record{Weight: r.Weight, Truth: r.Truth, Values: values}
	}
	return recs
}

// seedBatch converts a bulk-load dataset into one WAL batch (Seed's
// durability unit).
func seedBatch(d *topk.Dataset) wal.Batch {
	batch := make(wal.Batch, len(d.Recs))
	for i, rec := range d.Recs {
		values := make([]string, len(d.Schema))
		for j, f := range d.Schema {
			values[j] = rec.Fields[f]
		}
		batch[i] = wal.Record{Weight: rec.Weight, Truth: rec.Truth, Values: values}
	}
	return batch
}

// walBatch converts validated ingest records into one WAL batch,
// normalising omitted weights to 1 first so the logged batch is exactly
// what the accumulator will apply (and what replay will re-apply).
func walBatch(recs []IngestRecord) wal.Batch {
	batch := make(wal.Batch, len(recs))
	for i, rec := range recs {
		wgt := rec.Weight
		if wgt == 0 {
			wgt = 1
		}
		batch[i] = wal.Record{Weight: wgt, Truth: rec.Truth, Values: rec.Values}
	}
	return batch
}

// checkpointErr surfaces a background checkpoint failure: the batch is
// durable in the log regardless, so the request already succeeded —
// the failure is logged, not returned to the client.
func (s *Server) checkpointErr(err error) {
	if err == nil {
		return
	}
	if s.logger != nil {
		s.logger.Error("wal checkpoint failed", "err", fmt.Sprint(err))
	}
}
