package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	topk "topkdedup"
)

// stripEvals zeroes the evaluation counters inside per-level stats. A
// coordinator aggregates them per shard, where pruning's candidate
// visit order (and so its early-exit points) legitimately differs from
// the single-machine sweep; every other stats field is part of the
// byte-identity contract and stays.
func stripEvals(stats []topk.LevelStats) {
	for i := range stats {
		stats[i].CollapseEvals, stats[i].BoundEvals, stats[i].PruneEvals = 0, 0, 0
	}
}

// canonResult decodes a served /topk result and re-encodes it with
// timings and eval counters zeroed.
func canonResult(t *testing.T, data []byte) string {
	t.Helper()
	var res topk.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("decode result: %v: %s", err, data)
	}
	stripTimes(res.Pruning)
	stripEvals(res.Pruning)
	out, err := json.Marshal(&res)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// canonRank is canonResult for /rank results.
func canonRank(t *testing.T, data []byte) string {
	t.Helper()
	var res topk.RankResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("decode rank result: %v: %s", err, data)
	}
	stripTimes(res.PrunedStats)
	stripEvals(res.PrunedStats)
	out, err := json.Marshal(&res)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// shardCluster starts n shard-role servers plus one coordinator naming
// them, all over the toy domain.
func shardCluster(t *testing.T, n int) (coord *httptest.Server) {
	t.Helper()
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		_, ts := newTestServer(t, nil)
		peers[i] = ts.URL
	}
	_, coord = newTestServer(t, func(c *Config) { c.ShardPeers = peers })
	return coord
}

func queryRaw(t *testing.T, ts *httptest.Server, path string) json.RawMessage {
	t.Helper()
	resp, body := get(t, ts, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	var raw struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("GET %s: %v: %s", path, err, body)
	}
	return raw.Result
}

// TestDifferentialShardPeersVsStandalone is the multi-node differential
// anchor: a coordinator spreading queries over 1, 2, and 4 HTTP shard
// nodes must serve /topk and /rank answers byte-identical to a
// standalone server over the same records (timings and eval counters
// excluded — see stripEvals).
func TestDifferentialShardPeersVsStandalone(t *testing.T) {
	for trial, shards := range []int{1, 2, 4} {
		r := rand.New(rand.NewSource(int64(9000 + trial)))
		n := 40 + r.Intn(80)
		recs := make([]IngestRecord, n)
		for i := range recs {
			e := r.Intn(1 + n/4)
			recs[i] = IngestRecord{
				Weight: 1 + 0.001*r.Float64(),
				Truth:  fmt.Sprintf("E%03d", e),
				Values: []string{fmt.Sprintf("%c%03d.v%d", 'a'+e%9, e, r.Intn(3))},
			}
		}
		k := 1 + r.Intn(6)
		rr := 1 + r.Intn(3)

		_, alone := newTestServer(t, nil)
		ingestBatch(t, alone, recs)
		coord := shardCluster(t, shards)
		ingestBatch(t, coord, recs)

		topkPath := fmt.Sprintf("/topk?k=%d&r=%d", k, rr)
		got := canonResult(t, queryRaw(t, coord, topkPath))
		want := canonResult(t, queryRaw(t, alone, topkPath))
		if got != want {
			t.Fatalf("shards=%d k=%d r=%d: coordinator /topk != standalone /topk\ncoord: %s\nalone: %s",
				shards, k, rr, got, want)
		}
		rankPath := fmt.Sprintf("/rank?k=%d", k)
		gotR := canonRank(t, queryRaw(t, coord, rankPath))
		wantR := canonRank(t, queryRaw(t, alone, rankPath))
		if gotR != wantR {
			t.Fatalf("shards=%d k=%d: coordinator /rank != standalone /rank\ncoord: %s\nalone: %s",
				shards, k, gotR, wantR)
		}
	}
}

// TestShardSessionErrors exercises the shard-node endpoint edges: calls
// against a session that was never loaded must fail clean with 404, and
// malformed bodies with 400 — never a panic or a hung worker.
func TestShardSessionErrors(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		path, body string
		status     int
	}{
		{"/shard/bounds", `{"session":"nope","op":"scan","count":4}`, http.StatusNotFound},
		{"/shard/prune", `{"session":"nope","op":"start","m":2}`, http.StatusNotFound},
		{"/shard/groups", `{"session":"nope"}`, http.StatusNotFound},
		{"/shard/collapse", `{"session":"nope","level":0}`, http.StatusNotFound},
		{"/shard/collapse", `{"session":"nope","level":7}`, http.StatusBadRequest},
		{"/shard/load", `{"session":""}`, http.StatusBadRequest},
		{"/shard/bounds", `not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Fatalf("POST %s %s: status %d, want %d: %s", c.path, c.body, resp.StatusCode, c.status, body)
		}
	}
	// Closing an unknown session is not an error (idempotent cleanup).
	resp, err := http.Post(ts.URL+"/shard/close", "application/json",
		bytes.NewReader([]byte(`{"session":"nope"}`)))
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		Closed bool `json:"closed"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &cr) != nil || cr.Closed {
		t.Fatalf("close unknown session: status %d body %s", resp.StatusCode, body)
	}
}

// TestConcurrentSoakShardedEngine is the sharded analogue of
// TestConcurrentSoak: a server answering queries through the in-process
// sharded coordinator (Engine.Shards = 4) under concurrent ingest.
// Under `go test -race` (ci.sh runs it) this proves the coordinator's
// per-level fan-out goroutines never race the epoch-snapshot design.
func TestConcurrentSoakShardedEngine(t *testing.T) {
	const (
		ingesters        = 3
		queriers         = 4
		batchesPerWorker = 10
		batchSize        = 8
		queriesPerWorker = 12
	)
	_, ts := newTestServer(t, func(c *Config) {
		c.RefreshEvery = 0
		c.Engine.Shards = 4
	})
	client := ts.Client()

	var wg sync.WaitGroup
	errCh := make(chan error, ingesters+queriers)
	fail := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(700 + g)))
			for b := 0; b < batchesPerWorker; b++ {
				recs := make([]IngestRecord, batchSize)
				for i := range recs {
					e := r.Intn(30)
					recs[i] = IngestRecord{
						Weight: 1 + 0.001*r.Float64(),
						Truth:  fmt.Sprintf("E%02d", e),
						Values: []string{fmt.Sprintf("%c%02d.v%d", 'a'+e%5, e, r.Intn(2))},
					}
				}
				data, _ := json.Marshal(IngestRequest{Records: recs})
				resp, err := client.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(data))
				if err != nil {
					fail("ingester %d: %v", g, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					fail("ingester %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	paths := []string{"/topk?k=3&r=2", "/topk?k=5", "/rank?k=3"}
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; q < queriesPerWorker; q++ {
				resp, err := client.Get(ts.URL + paths[(g+q)%len(paths)])
				if err != nil {
					fail("querier %d: %v", g, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					fail("querier %d: status %d: %s", g, resp.StatusCode, body)
					return
				}
				if !json.Valid(body) {
					fail("querier %d: invalid JSON: %s", g, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
