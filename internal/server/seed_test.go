package server

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	topk "topkdedup"
)

func TestSeedPublishesImmediately(t *testing.T) {
	cfg := Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer(),
		RefreshEvery: -1} // manual refresh only — Seed must still publish
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := topk.NewDataset("seed", "name")
	d.Append(2, "E1", "alpha")
	d.Append(1, "E1", "alpha")
	d.Append(1, "E2", "beta")
	n, err := srv.Seed(d)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || srv.Records() != 3 {
		t.Fatalf("seeded %d, server has %d records, want 3", n, srv.Records())
	}
	seq, visible, _ := srv.SnapshotInfo()
	if seq == 0 || visible != 3 {
		t.Fatalf("snapshot seq=%d visible=%d, want published epoch with 3 records", seq, visible)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body := get(t, ts, "/topk?k=2")
	var out TopKResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Records != 3 || len(out.Result.Answers) == 0 {
		t.Fatalf("seeded records not queryable: %s", body)
	}
	if w := out.Result.Answers[0].Groups[0].Weight; w != 3 {
		t.Fatalf("top group weight %g, want 3 (seed weights preserved)", w)
	}
}

func TestSeedSchemaMismatch(t *testing.T) {
	srv, err := New(Config{Schema: []string{"name"}, Levels: toyLevels()})
	if err != nil {
		t.Fatal(err)
	}
	d := topk.NewDataset("seed", "name", "addr")
	if _, err := srv.Seed(d); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
