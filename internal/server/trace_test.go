package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"topkdedup/internal/obs"
)

// traceRecords builds a deterministic record set spreading entities over
// enough first-letter canopies that a 4-way canopy partition leaves no
// shard empty.
func traceRecords(n int) []IngestRecord {
	recs := make([]IngestRecord, n)
	for i := range recs {
		e := i % (n / 3)
		recs[i] = IngestRecord{
			Weight: 1 + 0.001*float64(i%7),
			Truth:  fmt.Sprintf("E%03d", e),
			Values: []string{fmt.Sprintf("%c%03d.v%d", 'a'+e%8, e, i%2)},
		}
	}
	return recs
}

// tracedShardCluster is shardCluster keeping the coordinator's *Server
// handle so tests can read its tracer and metrics directly.
func tracedShardCluster(t *testing.T, n int, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		_, ts := newTestServer(t, nil)
		peers[i] = ts.URL
	}
	return newTestServer(t, func(c *Config) {
		c.ShardPeers = peers
		if mutate != nil {
			mutate(c)
		}
	})
}

// TestShardedTraceStitching is the end-to-end acceptance check of the
// distributed tracing layer: one /topk?explain=1 query through a
// coordinator with four HTTP shard peers must yield ONE trace on the
// coordinator holding the coordinator's own spans (node 0) plus every
// peer's worker spans (nodes 1..4) stitched in; its Chrome export must
// decode as a loadable trace_event document; and the EXPLAIN report's
// per-round pruned counts must sum to the same total as the
// shard.prune.round.pruned metric the coordinator's collector saw.
func TestShardedTraceStitching(t *testing.T) {
	const shards = 4
	srv, coord := tracedShardCluster(t, shards, nil)
	ingestBatch(t, coord, traceRecords(96))

	resp, body := get(t, coord, "/topk?k=3&r=2&explain=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk: status %d: %s", resp.StatusCode, body)
	}
	var tr TopKResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("decode topk response: %v: %s", err, body)
	}
	if tr.TraceID == "" {
		t.Fatal("response carries no trace_id")
	}
	ex := tr.Result.Explain
	if ex == nil {
		t.Fatal("explain=1 returned no EXPLAIN report")
	}
	if !ex.Sharded {
		t.Error("EXPLAIN does not mark the query as sharded")
	}
	if ex.Trace != tr.TraceID {
		t.Errorf("EXPLAIN trace %q != response trace_id %q", ex.Trace, tr.TraceID)
	}

	// One stitched trace: spans from the coordinator and all four peers.
	resp, body = get(t, coord, "/debug/traces?trace="+tr.TraceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces: status %d: %s", resp.StatusCode, body)
	}
	var full TraceResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatalf("decode trace: %v: %s", err, body)
	}
	nodes := map[int]bool{}
	names := map[string]bool{}
	for _, s := range full.Spans {
		nodes[s.Node] = true
		names[s.Name] = true
	}
	for node := 0; node <= shards; node++ {
		if !nodes[node] {
			t.Errorf("stitched trace is missing node %d (have %v)", node, nodes)
		}
	}
	for _, want := range []string{"server.topk", "shard.level", "shard.worker.load", "shard.worker.prune"} {
		if !names[want] {
			t.Errorf("stitched trace is missing a %q span", want)
		}
	}
	// The per-shard breakdown in EXPLAIN comes from the stitched worker
	// spans; with four loaded peers it must cover all four.
	if len(ex.Shards) != shards {
		t.Errorf("EXPLAIN shard breakdown has %d entries, want %d: %+v", len(ex.Shards), shards, ex.Shards)
	}

	// Chrome export loads as the trace_event object shape with one
	// process row per node.
	resp, body = get(t, coord, "/debug/traces?trace="+tr.TraceID+"&format=chrome")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export: status %d: %s", resp.StatusCode, body)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome export did not decode: %v: %s", err, body)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export is empty")
	}
	procs := map[int]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Pid] = true
		}
	}
	if len(procs) != shards+1 {
		t.Errorf("chrome export names %d processes, want %d", len(procs), shards+1)
	}

	// EXPLAIN's pruning rounds aggregate exactly what the metric stream
	// saw: sum over levels and rounds of pruned == the collector's
	// shard.prune.round.pruned observation total (this was the only
	// query the coordinator answered).
	var explainPruned int64
	for _, l := range ex.Levels {
		for _, rd := range l.Rounds {
			explainPruned += int64(rd.Pruned)
		}
	}
	snap := srv.Metrics().Snapshot()
	dist, ok := snap.Observations["shard.prune.round.pruned"]
	if !ok {
		t.Fatalf("collector has no shard.prune.round.pruned observations (have %v)", snap.Names())
	}
	if int64(dist.Sum) != explainPruned {
		t.Errorf("EXPLAIN pruned total %d != metric sum %v", explainPruned, dist.Sum)
	}
}

// headerTamperTransport garbles or strips the Traceparent header on
// every outgoing request — a stand-in for a proxy or an older peer
// build that does not forward trace context.
type headerTamperTransport struct {
	garble string // "" strips the header entirely
}

func (tt headerTamperTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	req = req.Clone(req.Context())
	if tt.garble == "" {
		req.Header.Del(obs.TraceparentHeader)
	} else {
		req.Header.Set(obs.TraceparentHeader, tt.garble)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestTraceHeaderStripped is the graceful-degradation guarantee: when
// the Traceparent header is stripped (or garbled) between coordinator
// and shard peers, the query result must be byte-identical to the
// untampered run — only the stitched trace degrades, to a partial
// trace holding the coordinator's own spans and none from the peers.
func TestTraceHeaderStripped(t *testing.T) {
	recs := traceRecords(72)
	const path = "/topk?k=3&r=2"

	_, clean := tracedShardCluster(t, 4, nil)
	ingestBatch(t, clean, recs)
	want := canonResult(t, queryRaw(t, clean, path))

	for _, tc := range []struct {
		name   string
		garble string
	}{
		{"stripped", ""},
		{"garbled", "00-not-a-valid-traceparent-header-at-all-xx-yy-zz-00"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, coord := tracedShardCluster(t, 4, func(c *Config) {
				c.ShardClient = &http.Client{Transport: headerTamperTransport{garble: tc.garble}}
			})
			ingestBatch(t, coord, recs)

			resp, body := get(t, coord, path)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("topk: status %d: %s", resp.StatusCode, body)
			}
			var tr TopKResponse
			if err := json.Unmarshal(body, &tr); err != nil {
				t.Fatal(err)
			}
			var raw struct {
				Result json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(body, &raw); err != nil {
				t.Fatal(err)
			}
			if got := canonResult(t, raw.Result); got != want {
				t.Errorf("tampered trace header changed the query result\n got: %s\nwant: %s", got, want)
			}

			// The coordinator still traced its own side of the query...
			if tr.TraceID == "" {
				t.Fatal("coordinator recorded no trace")
			}
			spans := srv.Tracer().Spans(mustTraceID(t, tr.TraceID))
			if len(spans) == 0 {
				t.Fatal("coordinator trace is empty")
			}
			// ...but no peer span could join it: every span is node 0.
			for _, s := range spans {
				if s.Node != 0 {
					t.Errorf("span %q stitched from node %d despite tampered header", s.Name, s.Node)
				}
			}
		})
	}
}

func mustTraceID(t *testing.T, s string) obs.TraceID {
	t.Helper()
	var id obs.TraceID
	if err := id.UnmarshalText([]byte(s)); err != nil {
		t.Fatalf("trace id %q: %v", s, err)
	}
	return id
}

// TestDebugTracesEndpoint covers the trace-listing endpoint edges on a
// standalone server: the list shape, the unknown- and malformed-ID
// responses, and the 404 when tracing is disabled by TraceLimit < 0.
func TestDebugTracesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	ingestBatch(t, ts, names("alpha.v0", "alpha.v1", "beta.v0"))
	if resp, body := get(t, ts, "/topk?k=2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("topk: status %d: %s", resp.StatusCode, body)
	}

	resp, body := get(t, ts, "/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces: status %d: %s", resp.StatusCode, body)
	}
	var list TraceListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) == 0 {
		t.Fatal("no traces listed after a query")
	}
	if list.Traces[0].Name != "server.topk" {
		t.Errorf("latest trace name = %q, want server.topk", list.Traces[0].Name)
	}

	if resp, _ := get(t, ts, "/debug/traces?trace=zzzz"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed trace id: status %d, want 400", resp.StatusCode)
	}
	unknown := "00000000000000000000000000000001"
	resp, body = get(t, ts, "/debug/traces?trace="+unknown)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("unknown trace id: status %d: %s", resp.StatusCode, body)
	}

	_, off := newTestServer(t, func(c *Config) { c.TraceLimit = -1 })
	if resp, _ := get(t, off, "/debug/traces"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("tracing disabled: status %d, want 404", resp.StatusCode)
	}
	// Queries still answer normally with tracing off, without a trace id.
	ingestBatch(t, off, names("alpha.v0", "beta.v0"))
	resp, body = get(t, off, "/topk?k=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk with tracing off: status %d: %s", resp.StatusCode, body)
	}
	var tr TopKResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "" {
		t.Errorf("tracing disabled but response carries trace_id %q", tr.TraceID)
	}
}
