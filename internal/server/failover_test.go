// HTTP failover acceptance tests: a replicated 4-peer coordinator must
// answer /topk and /rank byte-identically to a standalone server when a
// peer process "dies" mid-query (every request after the trigger
// answers 502, like a crashed topkd behind a load balancer), and must
// surface a clean 502 — never a hang — when a double fault takes out
// both endpoints of one shard. These pin the ISSUE acceptance criterion
// end to end: coordinator HTTP transport → replica failover → replica
// peers' /shard/* handlers.
package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"topkdedup/internal/shard"
)

// killableNode wraps one shard peer: after the first request whose path
// matches killOn, every request (that one included) answers 502 — the
// node is dead from the coordinator's point of view.
type killableNode struct {
	mu     sync.Mutex
	dead   bool
	killOn string // path that triggers death; "" = alive forever
	hits   int    // requests rejected while dead
}

// middleware builds the node's handler around the real shard handler.
func (n *killableNode) middleware(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		if !n.dead && n.killOn != "" && r.URL.Path == n.killOn {
			n.dead = true
		}
		dead := n.dead
		if dead {
			n.hits++
		}
		n.mu.Unlock()
		if dead {
			http.Error(w, "node down", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// rejected reports how many requests the dead node turned away — proof
// the kill actually intercepted traffic.
func (n *killableNode) rejected() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hits
}

// fastReplica keeps failover timings test-sized.
func fastReplica() shard.ReplicaOptions {
	return shard.ReplicaOptions{
		CallTimeout:  5 * time.Second,
		HedgeDelay:   time.Millisecond,
		Retries:      1,
		RetryBackoff: time.Millisecond,
	}
}

// replicatedCluster starts n killable shard peers and a replicated
// coordinator over them.
func replicatedCluster(t *testing.T, n int, kills map[int]string) (coord *httptest.Server, nodes []*killableNode) {
	t.Helper()
	peers := make([]string, n)
	nodes = make([]*killableNode, n)
	for i := 0; i < n; i++ {
		srv, err := New(Config{Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer()})
		if err != nil {
			t.Fatal(err)
		}
		node := &killableNode{killOn: kills[i]}
		ts := httptest.NewServer(node.middleware(srv.Handler()))
		t.Cleanup(ts.Close)
		peers[i] = ts.URL
		nodes[i] = node
	}
	_, coord = newTestServer(t, func(c *Config) {
		c.ShardPeers = peers
		c.ShardReplicate = true
		c.ShardReplica = fastReplica()
	})
	return coord, nodes
}

// failoverRecords is a deterministic clustered stream big enough that
// every shard does real work in every phase.
func failoverRecords() []IngestRecord {
	var recs []IngestRecord
	for e := 0; e < 24; e++ {
		for c := 0; c <= e%3; c++ {
			recs = append(recs, IngestRecord{
				Weight: 1 + 0.001*float64(e*3+c),
				Truth:  fmt.Sprintf("E%03d", e),
				Values: []string{fmt.Sprintf("%c%03d.v%d", 'a'+e%6, e, c)},
			})
		}
	}
	return recs
}

// TestReplicatedClusterFailoverHTTP is the acceptance pin: 4 shard
// peers, one killed mid-query at each protocol phase, answers
// byte-identical to standalone.
func TestReplicatedClusterFailoverHTTP(t *testing.T) {
	recs := failoverRecords()
	_, alone := newTestServer(t, nil)
	ingestBatch(t, alone, recs)
	wantTopK := canonResult(t, queryRaw(t, alone, "/topk?k=3&r=2"))
	wantRank := canonRank(t, queryRaw(t, alone, "/rank?k=3"))

	phases := []string{"/shard/load", "/shard/collapse", "/shard/bounds", "/shard/prune", "/shard/groups"}
	for _, phase := range phases {
		for _, victim := range []int{0, 2} {
			t.Run(fmt.Sprintf("%s_kill%d", strings.TrimPrefix(phase, "/shard/"), victim), func(t *testing.T) {
				coord, nodes := replicatedCluster(t, 4, map[int]string{victim: phase})
				ingestBatch(t, coord, recs)
				if got := canonResult(t, queryRaw(t, coord, "/topk?k=3&r=2")); got != wantTopK {
					t.Fatalf("/topk with node %d killed on %s differs from standalone\ngot:  %s\nwant: %s",
						victim, phase, got, wantTopK)
				}
				if nodes[victim].rejected() == 0 {
					t.Fatalf("node %d never rejected a request — the kill did not engage", victim)
				}
				if got := canonRank(t, queryRaw(t, coord, "/rank?k=3")); got != wantRank {
					t.Fatalf("/rank with node %d killed on %s differs from standalone", victim, phase)
				}
			})
		}
	}
}

// TestReplicatedClusterNoFaultIdentity pins that replication alone (no
// fault) does not change a byte versus the unreplicated coordinator.
func TestReplicatedClusterNoFaultIdentity(t *testing.T) {
	recs := failoverRecords()
	plain := shardCluster(t, 4)
	ingestBatch(t, plain, recs)
	coord, _ := replicatedCluster(t, 4, nil)
	ingestBatch(t, coord, recs)
	for _, path := range []string{"/topk?k=4&r=2", "/topk?k=2&r=1"} {
		got := canonResult(t, queryRaw(t, coord, path))
		want := canonResult(t, queryRaw(t, plain, path))
		if got != want {
			t.Fatalf("%s: replicated cluster differs from plain cluster\ngot:  %s\nwant: %s", path, got, want)
		}
	}
}

// TestReplicatedClusterDoubleFault502 kills two ADJACENT peers — with
// ring replica placement that takes out both the primary and the
// replica of one shard — and requires a clean, prompt 502 with an error
// body, not a hang and not a 200 with wrong data.
func TestReplicatedClusterDoubleFault502(t *testing.T) {
	recs := failoverRecords()
	coord, _ := replicatedCluster(t, 4, map[int]string{1: "/shard/collapse", 2: "/shard/collapse"})
	ingestBatch(t, coord, recs)
	type answer struct {
		status int
		body   string
	}
	done := make(chan answer, 1)
	go func() {
		resp, body := get(t, coord, "/topk?k=3")
		done <- answer{resp.StatusCode, string(body)}
	}()
	select {
	case a := <-done:
		if a.status != http.StatusBadGateway {
			t.Fatalf("double fault answered %d (%s), want 502", a.status, a.body)
		}
		if !strings.Contains(a.body, "unavailable") {
			t.Fatalf("double-fault error body does not name the unavailable shard: %s", a.body)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("double fault hung instead of failing")
	}
}

// TestReplicatedClusterDeadAtLoad boots the query with one peer already
// dead: load-time failover (LoadPartsErrs + MarkDown) must route its
// shards to the surviving endpoints and still answer byte-identically.
func TestReplicatedClusterDeadAtLoad(t *testing.T) {
	recs := failoverRecords()
	_, alone := newTestServer(t, nil)
	ingestBatch(t, alone, recs)
	want := canonResult(t, queryRaw(t, alone, "/topk?k=3&r=2"))
	coord, nodes := replicatedCluster(t, 4, nil)
	nodes[3].mu.Lock()
	nodes[3].dead = true // dead before the first request ever reaches it
	nodes[3].mu.Unlock()
	ingestBatch(t, coord, recs)
	if got := canonResult(t, queryRaw(t, coord, "/topk?k=3&r=2")); got != want {
		t.Fatalf("query with peer 3 dead at load differs from standalone\ngot:  %s\nwant: %s", got, want)
	}
	if nodes[3].rejected() == 0 {
		t.Fatal("dead node was never contacted — test exercised nothing")
	}
}
