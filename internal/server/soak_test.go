package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"

	"topkdedup/internal/obs"
)

// TestConcurrentSoak is the end-to-end race exercise the serving design
// is accountable to: 4 ingest goroutines, 6 query goroutines, and 4
// metrics scrapers (2 Prometheus, 2 JSON) hammer one topkd handler
// stack through real HTTP while snapshots publish continuously and the
// accuracy auditor re-executes every served approx answer in the
// background. Run under `go test -race` (ci.sh does), it proves
//
//   - zero data races between ingest, publication, queries, scrapes,
//     and audits,
//   - every response is well-formed (JSON, or a parseable Prometheus
//     exposition) with a sane status,
//   - epochs only ever move forward from a query's point of view, and
//   - a clean run audits clean: zero containment violations.
func TestConcurrentSoak(t *testing.T) {
	const (
		ingesters        = 4
		queriers         = 6
		promScrapers     = 2
		jsonScrapers     = 2
		batchesPerWorker = 25
		batchSize        = 8
		queriesPerWorker = 40
		scrapesPerWorker = 15
	)
	srv, ts := newTestServer(t, func(c *Config) {
		c.RefreshEvery = 0 // publish after every batch
		c.AuditRate = 1    // audit every served approx answer
	})
	client := ts.Client()

	var wg sync.WaitGroup
	errCh := make(chan error, ingesters+queriers)
	fail := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}

	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for b := 0; b < batchesPerWorker; b++ {
				recs := make([]IngestRecord, batchSize)
				for i := range recs {
					e := r.Intn(30)
					recs[i] = IngestRecord{
						Weight: 1 + 0.001*r.Float64(),
						Truth:  fmt.Sprintf("E%02d", e),
						Values: []string{fmt.Sprintf("%c%02d.v%d", 'a'+e%5, e, r.Intn(2))},
					}
				}
				data, _ := json.Marshal(IngestRequest{Records: recs})
				resp, err := client.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(data))
				if err != nil {
					fail("ingester %d: %v", g, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					fail("ingester %d: status %d: %s", g, resp.StatusCode, body)
					return
				}
				if !json.Valid(body) {
					fail("ingester %d: invalid JSON: %s", g, body)
					return
				}
			}
		}(g)
	}

	paths := []string{
		"/topk?k=3&r=2", "/topk?k=5", "/rank?k=3", "/rank?t=2.5", "/healthz", "/metrics",
		"/topk?k=3&mode=approx", "/topk?k=4&mode=hybrid", "/slo",
	}
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(200 + g)))
			var lastSeq uint64
			for q := 0; q < queriesPerWorker; q++ {
				path := paths[r.Intn(len(paths))]
				resp, err := client.Get(ts.URL + path)
				if err != nil {
					fail("querier %d: %v", g, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					fail("querier %d: %s: status %d: %s", g, path, resp.StatusCode, body)
					return
				}
				if !json.Valid(body) {
					fail("querier %d: %s: invalid JSON: %s", g, path, body)
					return
				}
				// Every successful query answer must carry a well-formed
				// answer-cache verdict, whatever the publish/query race
				// resolved to. Approx/hybrid answers come from the sketch,
				// outside the answer cache — no X-Cache, different body.
				approx := strings.Contains(path, "mode=")
				if resp.StatusCode == http.StatusOK && !approx &&
					(strings.HasPrefix(path, "/topk") || strings.HasPrefix(path, "/rank")) {
					switch xc := resp.Header.Get("X-Cache"); xc {
					case cacheHit, cacheMiss, cacheCoalesced, cacheBypass:
					default:
						fail("querier %d: %s: bad X-Cache header %q", g, path, xc)
						return
					}
				}
				if resp.StatusCode == http.StatusOK && !approx && strings.HasPrefix(path, "/topk") {
					var out TopKResponse
					if err := json.Unmarshal(body, &out); err != nil {
						fail("querier %d: decode: %v", g, err)
						return
					}
					if out.Result == nil {
						fail("querier %d: nil result", g)
						return
					}
					if out.SnapshotSeq < lastSeq {
						fail("querier %d: epoch went backwards: %d -> %d", g, lastSeq, out.SnapshotSeq)
						return
					}
					lastSeq = out.SnapshotSeq
					for _, ans := range out.Result.Answers {
						for gi := 1; gi < len(ans.Groups); gi++ {
							if ans.Groups[gi-1].Weight < ans.Groups[gi].Weight {
								fail("querier %d: answer groups out of order", g)
								return
							}
						}
					}
				}
			}
		}(g)
	}

	// Prometheus scrapers: every exposition served mid-soak must parse
	// cleanly (declared types, monotone buckets, consistent _sum/_count).
	for g := 0; g < promScrapers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < scrapesPerWorker; i++ {
				resp, err := client.Get(ts.URL + "/metrics?format=prom")
				if err != nil {
					fail("prom scraper %d: %v", g, err)
					return
				}
				families, err := obs.CheckExposition(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail("prom scraper %d: status %d", g, resp.StatusCode)
					return
				}
				if err != nil {
					fail("prom scraper %d: exposition does not parse: %v", g, err)
					return
				}
				if len(families) == 0 {
					fail("prom scraper %d: empty exposition", g)
					return
				}
			}
		}(g)
	}

	// JSON scrapers exercise the pre-existing format concurrently.
	for g := 0; g < jsonScrapers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < scrapesPerWorker; i++ {
				for _, path := range []string{"/metrics?format=json", "/slo"} {
					resp, err := client.Get(ts.URL + path)
					if err != nil {
						fail("json scraper %d: %v", g, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fail("json scraper %d: %s: status %d: %s", g, path, resp.StatusCode, body)
						return
					}
					if !json.Valid(body) {
						fail("json scraper %d: %s: invalid JSON: %s", g, path, body)
						return
					}
				}
			}
		}(g)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The write side must have absorbed every batch.
	want := ingesters * batchesPerWorker * batchSize
	if srv.Records() != want {
		t.Fatalf("records after soak: %d, want %d", srv.Records(), want)
	}
	// And the final published state answers consistently.
	ingestBatch(t, ts, names("final"))
	_, body := get(t, ts, "/topk?k=3")
	var out TopKResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Records != want+1 {
		t.Fatalf("final snapshot has %d records, want %d", out.Records, want+1)
	}

	// Drain the background audits, then the accuracy verdict: a clean
	// soak must audit clean — the sketch's containment contract held for
	// every sampled answer.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.CounterValue("audit.samples") == 0 {
		t.Fatal("soak served approx answers but no audits ran")
	}
	if n := m.CounterValue("audit.containment.violated"); n != 0 {
		t.Fatalf("clean soak produced %d containment violations", n)
	}
}
