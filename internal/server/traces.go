package server

import (
	"net/http"

	"topkdedup/internal/obs"
)

// TraceListResponse is the GET /debug/traces body without a trace
// parameter: the recorder's retained traces, most recent first.
type TraceListResponse struct {
	// Traces summarises each retained trace.
	Traces []obs.TraceSummary `json:"traces"`
}

// TraceResponse is the GET /debug/traces?trace=<id> body: one trace's
// finished spans sorted by start time. The same shape shard.HTTP
// decodes when stitching a distributed trace.
type TraceResponse struct {
	// Trace is the requested trace ID.
	Trace obs.TraceID `json:"trace"`
	// Spans are the trace's finished spans.
	Spans []obs.SpanRecord `json:"spans"`
}

// handleDebugTraces serves the trace ring. Without parameters it lists
// retained traces; with ?trace=<32-hex-id> it returns that trace's
// spans (&format=chrome converts them to the Chrome trace_event JSON
// that chrome://tracing and Perfetto load directly). Answers 404 when
// tracing is disabled (Config.TraceLimit < 0).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (TraceLimit < 0)")
		return
	}
	raw := r.URL.Query().Get("trace")
	if raw == "" {
		writeJSON(w, http.StatusOK, TraceListResponse{Traces: s.tracer.Traces()})
		return
	}
	var tid obs.TraceID
	if err := tid.UnmarshalText([]byte(raw)); err != nil {
		writeError(w, http.StatusBadRequest, "bad trace id: "+err.Error())
		return
	}
	spans := s.tracer.Spans(tid)
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteChromeTrace(w, spans); err != nil {
			// Headers are gone; nothing useful left to send.
			return
		}
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{Trace: tid, Spans: spans})
}
