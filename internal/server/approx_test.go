// Tests of the approximate fast tier: strict /topk parameter
// validation (the mode=aprox regression), byte identity of mode=exact
// with the default path, the approx answer shape and X-Approx-Bound
// header, hybrid's background exact refresh and sketch.* metrics, WAL
// rebuild identity, and the differential containment property across
// seeded domains (toy + citations) and randomized ingest interleavings
// with greedy shrinking — the served error interval must contain the
// exact engine count in 100% of queries.
package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	topk "topkdedup"
	"topkdedup/internal/experiments"
	"topkdedup/internal/stream"
)

func TestTopKRejectsUnknownModeAndParams(t *testing.T) {
	_, ts := newTestServer(t, nil)
	ingestBatch(t, ts, names("alice", "alice", "bob"))
	cases := []struct {
		path string
		code string
	}{
		{"/topk?mode=aprox", "bad_mode"}, // the typo that must never silently serve exact
		{"/topk?mode=EXACT", "bad_mode"},
		{"/topk?k=2&foo=1", "unknown_param"},
		{"/topk?k=2&K=3", "unknown_param"},
		{"/topk?explain=yes", "bad_param"},
	}
	for _, tc := range cases {
		resp, body := get(t, ts, tc.path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400: %s", tc.path, resp.StatusCode, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("GET %s: bad error body %s", tc.path, body)
		}
		if er.Code != tc.code || er.Error == "" {
			t.Fatalf("GET %s: error %+v, want code %q", tc.path, er, tc.code)
		}
	}
	for _, ok := range []string{"/topk?k=2&mode=exact", "/topk?k=2&explain=0", "/topk?k=2&explain=1&r=2"} {
		if resp, body := get(t, ts, ok); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", ok, resp.StatusCode, body)
		}
	}
}

func TestDefaultModeValidation(t *testing.T) {
	if _, err := New(Config{Schema: []string{"name"}, Levels: toyLevels(), DefaultMode: "fast"}); err == nil {
		t.Fatal("DefaultMode 'fast' should be rejected")
	}
	_, ts := newTestServer(t, func(c *Config) { c.DefaultMode = ModeApprox })
	ingestBatch(t, ts, names("alice", "alice", "bob"))
	_, body := get(t, ts, "/topk?k=2")
	var ar ApproxTopKResponse
	if err := json.Unmarshal(body, &ar); err != nil || ar.Mode != ModeApprox {
		t.Fatalf("bare /topk under DefaultMode=approx served %s", body)
	}
	// An explicit mode still overrides the default.
	_, body = get(t, ts, "/topk?k=2&mode=exact")
	var tr TopKResponse
	if err := json.Unmarshal(body, &tr); err != nil || tr.Result == nil {
		t.Fatalf("mode=exact under DefaultMode=approx served %s", body)
	}
}

func TestModeExactByteIdentical(t *testing.T) {
	// TraceLimit -1 removes the per-query trace id, the one legitimately
	// fresh field; everything else must match byte for byte.
	_, ts := newTestServer(t, func(c *Config) { c.TraceLimit = -1 })
	ingestBatch(t, ts, names("alice", "alice", "alice", "bob", "bob", "carol", "cory"))
	resp, def := get(t, ts, "/topk?k=3&r=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default /topk: %d: %s", resp.StatusCode, def)
	}
	resp, explicit := get(t, ts, "/topk?k=3&r=2&mode=exact")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mode=exact /topk: %d: %s", resp.StatusCode, explicit)
	}
	if string(def) != string(explicit) {
		t.Fatalf("mode=exact diverges from default path\ndefault: %s\nexplicit: %s", def, explicit)
	}
}

func TestApproxAnswerAndHeader(t *testing.T) {
	_, ts := newTestServer(t, nil)
	ingestBatch(t, ts, names("alice", "alice", "alice", "bob", "bob", "carol"))
	resp, body := get(t, ts, "/topk?mode=approx&k=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("approx: status %d: %s", resp.StatusCode, body)
	}
	var ar ApproxTopKResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decode approx body: %v: %s", err, body)
	}
	if ar.Mode != ModeApprox || ar.K != 2 || ar.Records != 6 || ar.Exact != "" {
		t.Fatalf("approx response: %+v", ar)
	}
	if len(ar.Entries) != 2 || ar.Entries[0].Count != 3 || ar.Entries[1].Count != 2 {
		t.Fatalf("approx entries: %+v, want counts 3, 2", ar.Entries)
	}
	// Under capacity the sketch is exact: zero bounds, tight intervals.
	for _, e := range ar.Entries {
		if e.Err != 0 || e.Lower != e.Count {
			t.Fatalf("entry %+v: want exact interval under capacity", e)
		}
	}
	if got := resp.Header.Get(XApproxBound); got != "0" {
		t.Fatalf("X-Approx-Bound = %q, want 0", got)
	}
	if ar.SketchFloor != 0 || ar.MaxErr != 0 {
		t.Fatalf("floor %g maxerr %g, want 0 0", ar.SketchFloor, ar.MaxErr)
	}
}

func TestApproxDisabledSketch(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.SketchCapacity = -1 })
	ingestBatch(t, ts, names("alice", "bob"))
	for _, mode := range []string{ModeApprox, ModeHybrid} {
		resp, body := get(t, ts, "/topk?mode="+mode)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("mode=%s with disabled sketch: status %d: %s", mode, resp.StatusCode, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Code != "sketch_disabled" {
			t.Fatalf("mode=%s error body: %s", mode, body)
		}
	}
	// exact still works.
	if resp, body := get(t, ts, "/topk?k=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("exact with disabled sketch: %d: %s", resp.StatusCode, body)
	}
}

func TestHybridRefreshesExactAnswer(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	ingestBatch(t, ts, names("alice", "alice", "alice", "bob", "bob", "carol"))
	resp, body := get(t, ts, "/topk?mode=hybrid&k=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hybrid: status %d: %s", resp.StatusCode, body)
	}
	var ar ApproxTopKResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decode hybrid body: %v: %s", err, body)
	}
	if ar.Mode != ModeHybrid || ar.Exact != "refreshing" || len(ar.Entries) != 2 {
		t.Fatalf("hybrid response: %+v", ar)
	}
	// The background task must land the exact (k=2, r=1) answer in the
	// epoch cache: poll until mode=exact reports a hit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body = get(t, ts, "/topk?k=2&r=1&mode=exact")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exact probe: status %d: %s", resp.StatusCode, body)
		}
		if resp.Header.Get("X-Cache") == cacheHit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("exact answer never became a cache hit after hybrid query")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A second hybrid query now reports the exact tier as cached.
	_, body = get(t, ts, "/topk?mode=hybrid&k=2")
	if err := json.Unmarshal(body, &ar); err != nil || ar.Exact != "cached" {
		t.Fatalf("second hybrid response: %s", body)
	}
	if got := srv.Metrics().CounterValue("sketch.hybrid.refreshed"); got < 1 {
		t.Fatalf("sketch.hybrid.refreshed = %d, want >= 1", got)
	}
	// All entries are exact here (no evictions), so verification must
	// count them within bound and record zero observed error.
	if got := srv.Metrics().CounterValue("sketch.hybrid.within_bound"); got < 1 {
		t.Fatalf("sketch.hybrid.within_bound = %d, want >= 1", got)
	}
	if got := srv.Metrics().CounterValue("sketch.hybrid.outside_bound"); got != 0 {
		t.Fatalf("sketch.hybrid.outside_bound = %d, want 0", got)
	}
	if got := srv.Metrics().CounterValue("sketch.serve.hybrid"); got != 2 {
		t.Fatalf("sketch.serve.hybrid = %d, want 2", got)
	}
}

func TestApproxSurvivesRestart(t *testing.T) {
	// A rebooted server replays the WAL through the same accumulator
	// path, so the recovered sketch — including eviction floor and error
	// bounds at a deliberately tiny capacity — must serve identical
	// approximate entries.
	dir := t.TempDir()
	mutate := func(c *Config) {
		c.WALDir = dir
		c.SketchCapacity = 3
	}
	srv, ts := newTestServer(t, mutate)
	r := rand.New(rand.NewSource(42))
	for b := 0; b < 4; b++ {
		recs := make([]IngestRecord, 8)
		for i := range recs {
			e := r.Intn(9)
			recs[i] = IngestRecord{
				Weight: 1 + 0.001*r.Float64(),
				Truth:  fmt.Sprintf("E%02d", e),
				Values: []string{fmt.Sprintf("%c%02d.v%d", 'a'+e%4, e, r.Intn(2))},
			}
		}
		ingestBatch(t, ts, recs)
	}
	_, before := get(t, ts, "/topk?mode=approx&k=5")
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	reborn, err := New(Config{
		Schema: []string{"name"}, Levels: toyLevels(), Scorer: toyScorer(),
		WALDir: dir, SketchCapacity: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	ts2 := httptest.NewServer(reborn.Handler())
	defer ts2.Close()
	_, after := get(t, ts2, "/topk?mode=approx&k=5")
	var a, b ApproxTopKResponse
	if err := json.Unmarshal(before, &a); err != nil {
		t.Fatalf("decode pre-crash approx: %v: %s", err, before)
	}
	if err := json.Unmarshal(after, &b); err != nil {
		t.Fatalf("decode post-crash approx: %v: %s", err, after)
	}
	if len(a.Entries) == 0 || a.SketchFloor == 0 {
		t.Fatalf("test needs a sketch with evictions, got %+v", a)
	}
	if a.SketchFloor != b.SketchFloor || a.MaxErr != b.MaxErr || len(a.Entries) != len(b.Entries) {
		t.Fatalf("recovered sketch diverges:\nbefore: %s\nafter:  %s", before, after)
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("recovered entry %d: %+v vs %+v", i, a.Entries[i], b.Entries[i])
		}
	}
}

// approxCase is one differential trial: a record stream, a batch split,
// a sketch capacity, and the k to query.
type approxCase struct {
	schema  []string
	levels  []topk.Level
	recs    []IngestRecord
	batches []int
	cap     int
	k       int
}

// closureWeights replays the records through a bare accumulator and
// returns each record id's sufficient-closure component weight — the
// truth the sketch's intervals are measured against.
func closureWeights(t *testing.T, c *approxCase, n int) map[int]float64 {
	t.Helper()
	acc, err := stream.New("truth", c.schema, c.levels)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range c.recs[:n] {
		w := rec.Weight
		if w == 0 {
			w = 1
		}
		acc.Add(w, rec.Truth, rec.Values...)
	}
	out := make(map[int]float64)
	for _, g := range acc.Groups() {
		var sum float64
		for _, id := range g.Members {
			sum += acc.Dataset().Recs[id].Weight
		}
		for _, id := range g.Members {
			out[id] = sum
		}
	}
	return out
}

// runApproxCase ingests the case's records (random batch split, approx
// queries after every publish), and returns a description of the first
// containment violation, or "" when every interval contained both the
// closure truth and the matching exact engine count.
func runApproxCase(t *testing.T, c *approxCase) string {
	t.Helper()
	srv, err := New(Config{
		Schema: c.schema, Levels: c.levels, SketchCapacity: c.cap, TraceLimit: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	at := 0
	for _, sz := range append(append([]int{}, c.batches...), len(c.recs)) {
		end := at + sz
		if end > len(c.recs) {
			end = len(c.recs)
		}
		if end > at {
			ingestBatch(t, ts, c.recs[at:end])
			at = end
		}
		resp, body := get(t, ts, fmt.Sprintf("/topk?mode=approx&k=%d", c.k))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("approx query: status %d: %s", resp.StatusCode, body)
		}
		var ar ApproxTopKResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatalf("decode approx: %v: %s", err, body)
		}
		truth := closureWeights(t, c, at)
		eps := 1e-6
		for _, e := range ar.Entries {
			w, ok := truth[e.Rep]
			if !ok {
				return fmt.Sprintf("after %d records: entry rep %d is not a known record", at, e.Rep)
			}
			if w > e.Count+eps || w < e.Count-e.Err-eps {
				return fmt.Sprintf("after %d records: rep %d weight %g outside [%g, %g]",
					at, e.Rep, w, e.Count-e.Err, e.Count)
			}
		}
		// The served intervals must also contain the exact engine answer's
		// weights: with a single-level schedule and no scorer the engine's
		// top groups ARE closure components, matched by membership.
		_, exactBody := get(t, ts, fmt.Sprintf("/topk?mode=exact&k=%d", c.k))
		var tr TopKResponse
		if err := json.Unmarshal(exactBody, &tr); err != nil {
			t.Fatalf("decode exact: %v: %s", err, exactBody)
		}
		exactOf := make(map[int]float64)
		if len(tr.Result.Answers) > 0 {
			for _, g := range tr.Result.Answers[0].Groups {
				for _, id := range g.Records {
					exactOf[id] = g.Weight
				}
			}
		}
		for _, e := range ar.Entries {
			w, ok := exactOf[e.Rep]
			if !ok {
				continue // component below the exact top-k
			}
			if w > e.Count+eps || w < e.Count-e.Err-eps {
				return fmt.Sprintf("after %d records: rep %d exact count %g outside [%g, %g]",
					at, e.Rep, w, e.Count-e.Err, e.Count)
			}
		}
	}
	return ""
}

// shrinkApprox greedily removes records while the violation persists.
func shrinkApprox(t *testing.T, c *approxCase) *approxCase {
	t.Helper()
	cur := *c
	cur.recs = append([]IngestRecord(nil), c.recs...)
	cur.batches = nil // single batch while shrinking
	for pass := 0; pass < 4; pass++ {
		removed := false
		for i := 0; i < len(cur.recs) && len(cur.recs) > 1; i++ {
			cand := cur
			cand.recs = append(append([]IngestRecord(nil), cur.recs[:i]...), cur.recs[i+1:]...)
			if runApproxCase(t, &cand) != "" {
				cur = cand
				removed = true
				i--
			}
		}
		if !removed {
			break
		}
	}
	return &cur
}

// TestDifferentialSketchContainment is the approximate tier's
// correctness anchor (the ISSUE 9 acceptance criterion): across seeded
// domains and randomized ingest interleavings, every served approx
// entry's [lower, count] interval contains both the record's
// sufficient-closure component weight and the exact engine.TopK count
// of the matching group — in 100% of queries, at every capacity tried,
// including capacities small enough to force heavy eviction churn.
func TestDifferentialSketchContainment(t *testing.T) {
	type domainGen func(t *testing.T, r *rand.Rand) *approxCase
	toyGen := func(t *testing.T, r *rand.Rand) *approxCase {
		n := 20 + r.Intn(100)
		recs := make([]IngestRecord, n)
		for i := range recs {
			e := r.Intn(1 + n/5)
			recs[i] = IngestRecord{
				Weight: 1 + 0.001*r.Float64(),
				Truth:  fmt.Sprintf("E%03d", e),
				Values: []string{fmt.Sprintf("%c%03d.v%d", 'a'+e%6, e, r.Intn(3))},
			}
		}
		return &approxCase{schema: []string{"name"}, levels: toyLevels(), recs: recs}
	}
	citations := citationRecords(t)
	citationGen := func(t *testing.T, r *rand.Rand) *approxCase {
		n := 40 + r.Intn(len(citations.recs)-40)
		return &approxCase{
			schema: citations.schema,
			levels: citations.levels,
			recs:   citations.recs[:n],
		}
	}
	caps := []int{2, 5, 16, 0}
	trial := 0
	for _, gen := range []domainGen{toyGen, citationGen} {
		for _, capacity := range caps {
			trial++
			r := rand.New(rand.NewSource(int64(7000 + trial)))
			c := gen(t, r)
			c.cap = capacity
			c.k = 1 + r.Intn(6)
			for left := len(c.recs); left > 0; {
				sz := 1 + r.Intn(17)
				if sz > left {
					sz = left
				}
				c.batches = append(c.batches, sz)
				left -= sz
			}
			if msg := runApproxCase(t, c); msg != "" {
				small := shrinkApprox(t, c)
				t.Fatalf("trial %d (cap=%d, k=%d, batches %v): %s\nshrunk to %d records:\n%s",
					trial, capacity, c.k, c.batches, msg, len(small.recs), dumpRecords(small.recs))
			}
		}
	}
}

// citationDomain is the citation-analogue dataset reshaped for ingest:
// a single-level schedule (sufficient closure only, no scorer), so the
// exact engine's answer weights equal closure weights and containment
// is a deterministic 100% contract.
type citationDomain struct {
	schema []string
	levels []topk.Level
	recs   []IngestRecord
}

func citationRecords(t *testing.T) *citationDomain {
	t.Helper()
	dd, err := experiments.CitationSetup(240, false)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]IngestRecord, len(dd.Data.Recs))
	for i, rec := range dd.Data.Recs {
		values := make([]string, len(dd.Data.Schema))
		for j, f := range dd.Data.Schema {
			values[j] = rec.Fields[f]
		}
		recs[i] = IngestRecord{Weight: rec.Weight, Truth: rec.Truth, Values: values}
	}
	return &citationDomain{
		schema: dd.Data.Schema,
		levels: dd.Domain.Levels[:1],
		recs:   recs,
	}
}
