package segment

import (
	"math"
	"sort"
	"testing"
)

func TestBestRTopIsBest(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		n := 3 + int(seed%5)
		sc := randScorer(seed, n, n)
		ranked := BestR(sc, 3)
		if len(ranked) == 0 {
			t.Fatal("no segmentations")
		}
		_, best := Best(sc)
		if math.Abs(ranked[0].Score-best) > 1e-9 {
			t.Errorf("seed %d: BestR[0] = %v, Best = %v", seed, ranked[0].Score, best)
		}
	}
}

func TestBestRMatchesBruteForce(t *testing.T) {
	for seed := int64(20); seed <= 32; seed++ {
		n := 3 + int(seed%4)
		sc := randScorer(seed, n, n)
		const r = 5
		ranked := BestR(sc, r)
		// Brute force: all segmentations scored and sorted.
		var scores []float64
		for _, segs := range allSegmentations(n, n) {
			scores = append(scores, segScore(sc, segs))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		want := r
		if len(scores) < want {
			want = len(scores)
		}
		if len(ranked) != want {
			t.Fatalf("seed %d: got %d segmentations, want %d", seed, len(ranked), want)
		}
		for i := 0; i < want; i++ {
			if math.Abs(ranked[i].Score-scores[i]) > 1e-9 {
				t.Errorf("seed %d rank %d: %v, want %v", seed, i, ranked[i].Score, scores[i])
			}
		}
	}
}

func TestBestRSegmentationsValidAndDistinct(t *testing.T) {
	sc := randScorer(7, 8, 4)
	ranked := BestR(sc, 6)
	seen := map[string]bool{}
	for _, rk := range ranked {
		// Valid cover of [0, n).
		next := 0
		key := ""
		for _, s := range rk.Segs {
			if s.Start != next {
				t.Fatalf("gap in segmentation %v", rk.Segs)
			}
			if s.Len() > 4 {
				t.Fatalf("segment %v exceeds width cap", s)
			}
			next = s.End + 1
			key += keyOf([]Segment{s})
		}
		if next != 8 {
			t.Fatalf("segmentation %v does not cover all positions", rk.Segs)
		}
		if seen[key] {
			t.Fatalf("duplicate segmentation %v", rk.Segs)
		}
		seen[key] = true
		// Reported score matches the segments.
		if math.Abs(segScore(sc, rk.Segs)-rk.Score) > 1e-9 {
			t.Errorf("score mismatch for %v", rk.Segs)
		}
	}
	// Sorted by decreasing score.
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score < ranked[i].Score {
			t.Error("segmentations not sorted")
		}
	}
}

func TestBestREdgeCases(t *testing.T) {
	sc := randScorer(1, 4, 4)
	if got := BestR(sc, 0); got != nil {
		t.Error("r=0 should return nil")
	}
	// Fewer segmentations than r: return all of them.
	tiny := randScorer(2, 2, 2)
	got := BestR(tiny, 10)
	if len(got) != 2 { // {01} and {0}{1}
		t.Errorf("expected 2 segmentations of 2 items, got %d", len(got))
	}
	empty := randScorer(3, 0, 1)
	if got := BestR(empty, 3); got != nil {
		t.Error("empty input should return nil")
	}
}
