package segment

import (
	"math"
	"math/rand"
	"testing"

	"topkdedup/internal/cluster"
	"topkdedup/internal/score"
)

func randPF(seed int64, n int) score.PairFunc {
	r := rand.New(rand.NewSource(seed))
	vals := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := r.Float64()*4 - 2
			vals[i*n+j], vals[j*n+i] = v, v
		}
	}
	return func(i, j int) float64 { return vals[i*n+j] }
}

func groupingScore(pf score.PairFunc, n int, clusters [][]int) float64 {
	m := score.NewMatrix(n, pf)
	return score.CCScore(m, clusters)
}

func TestHierarchyBestRScoresConsistent(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		n := 3 + int(seed%5)
		pf := randPF(seed, n)
		dend := cluster.Agglomerative(n, pf, cluster.AverageLink)
		ranked := HierarchyBestR(dend, pf, 4)
		if len(ranked) == 0 {
			t.Fatal("no frontiers")
		}
		for i, rc := range ranked {
			// Reported score must equal the grouping's CC score.
			if got := groupingScore(pf, n, rc.Clusters); math.Abs(got-rc.Score) > 1e-9 {
				t.Errorf("seed %d rank %d: reported %v, actual %v", seed, i, rc.Score, got)
			}
			// Clusters must partition [0, n).
			seen := make([]bool, n)
			for _, c := range rc.Clusters {
				for _, x := range c {
					if seen[x] {
						t.Fatalf("item %d repeated", x)
					}
					seen[x] = true
				}
			}
			for x, ok := range seen {
				if !ok {
					t.Fatalf("item %d missing", x)
				}
			}
			if i > 0 && ranked[i-1].Score < rc.Score {
				t.Error("frontiers not score-sorted")
			}
		}
	}
}

// The paper's §5.3 subsumption claim: every frontier of the hierarchy is a
// segmentation of the hierarchy's leaf order, so the best segmentation
// over that order scores at least as high as the best frontier.
func TestHierarchySubsumedBySegmentation(t *testing.T) {
	for seed := int64(20); seed <= 40; seed++ {
		n := 3 + int(seed%6)
		pf := randPF(seed, n)
		dend := cluster.Agglomerative(n, pf, cluster.AverageLink)
		frontier := HierarchyBestR(dend, pf, 1)[0]

		order := dend.LeafOrder()
		pos := make([]int, n)
		for p, item := range order {
			pos[item] = p
		}
		posPF := func(a, b int) float64 { return pf(order[a], order[b]) }
		sc := score.NewSegmentScorer(n, n, posPF, nil)
		_, segBest := Best(sc)
		if segBest < frontier.Score-1e-9 {
			t.Errorf("seed %d: segmentation best %v below hierarchy best %v",
				seed, segBest, frontier.Score)
		}
		// Sanity: every frontier cluster is contiguous in the leaf order.
		for _, c := range frontier.Clusters {
			lo, hi := n, -1
			for _, x := range c {
				if pos[x] < lo {
					lo = pos[x]
				}
				if pos[x] > hi {
					hi = pos[x]
				}
			}
			if hi-lo+1 != len(c) {
				t.Fatalf("seed %d: frontier cluster %v not contiguous in leaf order %v",
					seed, c, order)
			}
		}
	}
}

func TestHierarchyBestREdgeCases(t *testing.T) {
	pf := func(i, j int) float64 { return 1 }
	single := cluster.Agglomerative(1, pf, cluster.AverageLink)
	got := HierarchyBestR(single, pf, 3)
	if len(got) != 1 || len(got[0].Clusters) != 1 {
		t.Errorf("single leaf: %+v", got)
	}
	if HierarchyBestR(cluster.Agglomerative(0, pf, cluster.AverageLink), pf, 3) != nil {
		t.Error("empty dendrogram should give nil")
	}
	if HierarchyBestR(single, pf, 0) != nil {
		t.Error("r=0 should give nil")
	}
}

func TestHierarchyBestFindsPlantedClusters(t *testing.T) {
	// Two clear clusters: best frontier should be exactly them.
	n := 6
	group := func(i int) int { return i / 3 }
	pf := func(i, j int) float64 {
		if group(i) == group(j) {
			return 1
		}
		return -1
	}
	dend := cluster.Agglomerative(n, pf, cluster.AverageLink)
	best := HierarchyBestR(dend, pf, 1)[0]
	if len(best.Clusters) != 2 {
		t.Fatalf("expected 2 clusters, got %v", best.Clusters)
	}
	for _, c := range best.Clusters {
		if len(c) != 3 || group(c[0]) != group(c[1]) || group(c[1]) != group(c[2]) {
			t.Errorf("cluster %v does not match planted structure", c)
		}
	}
}
