package segment

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"topkdedup/internal/score"
)

// randScorer builds a segment scorer over n items with random pair scores.
func randScorer(seed int64, n, width int) *score.SegmentScorer {
	r := rand.New(rand.NewSource(seed))
	vals := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := r.Float64()*4 - 2
			vals[i*n+j], vals[j*n+i] = v, v
		}
	}
	pf := func(i, j int) float64 { return vals[i*n+j] }
	return score.NewSegmentScorer(n, width, pf, nil)
}

// enumerate2 recursively enumerates all segmentations of [0, n) with the
// given width cap and calls fn on each complete one.
func enumerate2(n, width int, segs []Segment, fn func([]Segment)) {
	from := 0
	if len(segs) > 0 {
		from = segs[len(segs)-1].End + 1
	}
	if from == n {
		fn(segs)
		return
	}
	for j := 1; j <= width && from+j <= n; j++ {
		enumerate2(n, width, append(segs, Segment{Start: from, End: from + j - 1}), fn)
	}
}

func allSegmentations(n, width int) [][]Segment {
	var out [][]Segment
	enumerate2(n, width, nil, func(segs []Segment) {
		cp := make([]Segment, len(segs))
		copy(cp, segs)
		out = append(out, cp)
	})
	return out
}

func segScore(sc *score.SegmentScorer, segs []Segment) float64 {
	var s float64
	for _, seg := range segs {
		s += sc.Score(seg.Start, seg.End)
	}
	return s
}

// answerOf returns the unique TopK answer a segmentation supports, or
// false when the K-th and K+1-th longest segments tie.
func answerOf(segs []Segment, k int) ([]Segment, bool) {
	if len(segs) < k {
		return nil, false
	}
	bySize := make([]Segment, len(segs))
	copy(bySize, segs)
	sort.Slice(bySize, func(i, j int) bool { return bySize[i].Len() > bySize[j].Len() })
	if len(bySize) > k && bySize[k-1].Len() == bySize[k].Len() {
		return nil, false
	}
	top := bySize[:k]
	sort.Slice(top, func(i, j int) bool { return top[i].Start < top[j].Start })
	return top, true
}

func keyOf(segs []Segment) string {
	s := ""
	for _, seg := range segs {
		s += "|" + string(rune('0'+seg.Start)) + ":" + string(rune('0'+seg.End))
	}
	return s
}

// bruteTopR computes the reference answers by full enumeration.
func bruteTopR(sc *score.SegmentScorer, k, r int, mode Mode) []Answer {
	type agg struct {
		score float64
		wit   float64
		top   []Segment
		full  []Segment
	}
	byKey := map[string]*agg{}
	for _, segs := range allSegmentations(sc.N(), sc.MaxWidth()) {
		top, ok := answerOf(segs, k)
		if !ok {
			continue
		}
		s := segScore(sc, segs)
		key := keyOf(top)
		a, exists := byKey[key]
		if !exists {
			byKey[key] = &agg{score: s, wit: s, top: top, full: segs}
			continue
		}
		if mode == Viterbi {
			if s > a.score {
				a.score, a.wit, a.full = s, s, segs
			}
		} else {
			a.score = logAddExp(a.score, s)
			if s > a.wit {
				a.wit, a.full = s, segs
			}
		}
	}
	var out []Answer
	for _, a := range byKey {
		out = append(out, Answer{Score: a.score, TopSegs: a.top, Full: a.full})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return keyOf(out[i].TopSegs) < keyOf(out[j].TopSegs)
	})
	if len(out) > r {
		out = out[:r]
	}
	return out
}

func TestTopRMatchesBruteForceViterbi(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		n := 4 + int(seed%4)
		sc := randScorer(seed, n, n)
		for _, k := range []int{1, 2} {
			got := TopR(sc, k, 3, Viterbi)
			want := bruteTopR(sc, k, 3, Viterbi)
			if len(got) != len(want) {
				t.Fatalf("seed %d k=%d: %d answers, want %d", seed, k, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Errorf("seed %d k=%d answer %d: score %v, want %v",
						seed, k, i, got[i].Score, want[i].Score)
				}
				if !reflect.DeepEqual(got[i].TopSegs, want[i].TopSegs) {
					// Equal scores can legitimately reorder; only complain
					// when the score differs too.
					if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
						t.Errorf("seed %d k=%d answer %d: segs %v, want %v",
							seed, k, i, got[i].TopSegs, want[i].TopSegs)
					}
				}
			}
		}
	}
}

func TestTopRMatchesBruteForceMarginal(t *testing.T) {
	for seed := int64(21); seed <= 35; seed++ {
		n := 4 + int(seed%3)
		sc := randScorer(seed, n, n)
		got := TopR(sc, 2, 4, Marginal)
		want := bruteTopR(sc, 2, 4, Marginal)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d answers, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > 1e-6 {
				t.Errorf("seed %d answer %d: marginal score %v, want %v",
					seed, i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestTopRWidthCapRespected(t *testing.T) {
	sc := randScorer(5, 8, 3)
	for _, ans := range TopR(sc, 2, 3, Viterbi) {
		for _, s := range ans.Full {
			if s.Len() > 3 {
				t.Errorf("segment %v exceeds width cap", s)
			}
		}
		if len(ans.TopSegs) != 2 {
			t.Errorf("answer should have 2 top segments: %v", ans.TopSegs)
		}
	}
}

func TestTopRAnswersAreRankedAndDistinct(t *testing.T) {
	sc := randScorer(11, 7, 7)
	answers := TopR(sc, 2, 5, Viterbi)
	keys := map[string]bool{}
	for i, a := range answers {
		if i > 0 && answers[i-1].Score < a.Score {
			t.Error("answers must be sorted by decreasing score")
		}
		k := keyOf(a.TopSegs)
		if keys[k] {
			t.Errorf("duplicate answer identity %s", k)
		}
		keys[k] = true
	}
}

func TestTopRFullIsValidSegmentation(t *testing.T) {
	sc := randScorer(13, 8, 8)
	for _, a := range TopR(sc, 2, 3, Viterbi) {
		next := 0
		for _, s := range a.Full {
			if s.Start != next {
				t.Fatalf("gap in segmentation %v", a.Full)
			}
			next = s.End + 1
		}
		if next != 8 {
			t.Fatalf("segmentation doesn't cover all positions: %v", a.Full)
		}
		// Viterbi score of the witness must equal the answer score.
		if math.Abs(segScore(sc, a.Full)-a.Score) > 1e-9 {
			t.Errorf("witness score %v != answer score %v", segScore(sc, a.Full), a.Score)
		}
	}
}

func TestTopREdgeCases(t *testing.T) {
	sc := randScorer(1, 5, 5)
	if got := TopR(sc, 0, 3, Viterbi); got != nil {
		t.Error("K=0 should return nil")
	}
	if got := TopR(sc, 6, 3, Viterbi); got != nil {
		t.Error("K > n should return nil")
	}
	if got := TopR(sc, 1, 0, Viterbi); got != nil {
		t.Error("R=0 should return nil")
	}
	// K == n: every position its own big segment; one possible answer.
	got := TopR(sc, 5, 3, Viterbi)
	if len(got) != 1 || len(got[0].TopSegs) != 5 {
		t.Errorf("K=n should give the all-singletons answer, got %v", got)
	}
}

func TestMarginalScoreExceedsViterbi(t *testing.T) {
	// The marginal aggregates over more groupings, so for the same answer
	// identity its (log-sum-exp) score is >= the Viterbi score.
	sc := randScorer(17, 7, 7)
	vit := TopR(sc, 2, 5, Viterbi)
	marg := TopR(sc, 2, 5, Marginal)
	vitByKey := map[string]float64{}
	for _, a := range vit {
		vitByKey[keyOf(a.TopSegs)] = a.Score
	}
	for _, a := range marg {
		if v, ok := vitByKey[keyOf(a.TopSegs)]; ok {
			if a.Score < v-1e-9 {
				t.Errorf("marginal %v < viterbi %v for %v", a.Score, v, a.TopSegs)
			}
		}
	}
}

func TestBestMatchesBruteForce(t *testing.T) {
	for seed := int64(41); seed <= 55; seed++ {
		n := 3 + int(seed%5)
		sc := randScorer(seed, n, n)
		segs, got := Best(sc)
		best := math.Inf(-1)
		for _, cand := range allSegmentations(n, n) {
			if s := segScore(sc, cand); s > best {
				best = s
			}
		}
		if math.Abs(got-best) > 1e-9 {
			t.Errorf("seed %d: Best = %v, brute force = %v", seed, got, best)
		}
		if math.Abs(segScore(sc, segs)-got) > 1e-9 {
			t.Errorf("seed %d: returned segments score mismatch", seed)
		}
	}
}

func TestBestEmpty(t *testing.T) {
	sc := score.NewSegmentScorer(0, 1, func(i, j int) float64 { return 0 }, nil)
	segs, s := Best(sc)
	if segs != nil || s != 0 {
		t.Errorf("empty Best = %v, %v", segs, s)
	}
}

func TestClusters(t *testing.T) {
	order := []int{4, 2, 0, 3, 1}
	segs := []Segment{{0, 1}, {2, 4}}
	got := Clusters(segs, order)
	want := [][]int{{2, 4}, {0, 1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Clusters = %v, want %v", got, want)
	}
}

func TestSegmentLen(t *testing.T) {
	if (Segment{2, 5}).Len() != 4 {
		t.Error("Len wrong")
	}
}

func TestLogAddExp(t *testing.T) {
	got := logAddExp(math.Log(2), math.Log(3))
	if math.Abs(got-math.Log(5)) > 1e-12 {
		t.Errorf("logAddExp = %v, want log 5", got)
	}
	if got := logAddExp(0, math.Inf(-1)); got != 0 {
		t.Errorf("logAddExp with -inf = %v", got)
	}
}
