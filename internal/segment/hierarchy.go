package segment

import (
	"sort"

	"topkdedup/internal/cluster"
	"topkdedup/internal/score"
)

// This file implements the paper's §5.2 alternative to the linear
// embedding: arrange the records in a hierarchy and enumerate groupings
// as frontiers of the tree, with a leaf-to-root dynamic program finding
// the R highest-scoring frontiers. The paper notes — and
// TestHierarchySubsumedBySegmentation verifies — that the segmentation
// model strictly subsumes this search space: every frontier of the
// hierarchy is a segmentation of its leaf order.

// RankedClusters is one frontier grouping with its score (Eq. 1
// semantics, matching score.GroupScore).
type RankedClusters struct {
	Score    float64
	Clusters [][]int
}

// HierarchyBestR returns the R highest-scoring groupings expressible as
// frontiers of the dendrogram, under the correlation-clustering objective
// induced by pf over the working set [0, n).
func HierarchyBestR(dend *cluster.Dendrogram, pf score.PairFunc, r int) []RankedClusters {
	n := dend.N
	if n == 0 || r < 1 {
		return nil
	}
	// negAll[i] = Σ_j min(pf(i,j), 0): each item's total negative mass,
	// used for the cross-negative term of GroupScore.
	negAll := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if p := pf(i, j); p < 0 {
				negAll[i] += p
				negAll[j] += p
			}
		}
	}

	type nodeInfo struct {
		leaves []int
		posIn  float64 // Σ positive pf over internal pairs
		negIn  float64 // Σ negative pf over internal pairs
		best   []RankedClusters
	}
	info := make(map[int]*nodeInfo, n+len(dend.Merges))
	groupScore := func(ni *nodeInfo) float64 {
		var negAllSum float64
		for _, l := range ni.leaves {
			negAllSum += negAll[l]
		}
		cross := negAllSum - 2*ni.negIn
		return 2*ni.posIn - cross
	}
	for leaf := 0; leaf < n; leaf++ {
		ni := &nodeInfo{leaves: []int{leaf}}
		ni.best = []RankedClusters{{Score: groupScore(ni), Clusters: [][]int{{leaf}}}}
		info[leaf] = ni
	}
	for mi, m := range dend.Merges {
		a, b := info[m.A], info[m.B]
		ni := &nodeInfo{
			leaves: append(append([]int{}, a.leaves...), b.leaves...),
			posIn:  a.posIn + b.posIn,
			negIn:  a.negIn + b.negIn,
		}
		for _, la := range a.leaves {
			for _, lb := range b.leaves {
				if p := pf(la, lb); p > 0 {
					ni.posIn += p
				} else {
					ni.negIn += p
				}
			}
		}
		// Candidate frontiers: this node as one whole group, or any
		// combination of the children's frontiers.
		cands := []RankedClusters{{
			Score:    groupScore(ni),
			Clusters: [][]int{append([]int{}, ni.leaves...)},
		}}
		for _, fa := range a.best {
			for _, fb := range b.best {
				clusters := make([][]int, 0, len(fa.Clusters)+len(fb.Clusters))
				clusters = append(clusters, fa.Clusters...)
				clusters = append(clusters, fb.Clusters...)
				cands = append(cands, RankedClusters{Score: fa.Score + fb.Score, Clusters: clusters})
			}
		}
		sort.SliceStable(cands, func(x, y int) bool { return cands[x].Score > cands[y].Score })
		if len(cands) > r {
			cands = cands[:r]
		}
		ni.best = cands
		info[n+mi] = ni
	}
	root := n + len(dend.Merges) - 1
	if len(dend.Merges) == 0 {
		root = 0
		// Multiple disconnected leaves only happen with n == 1 here
		// (Agglomerative always merges to a single root for n > 1).
	}
	out := info[root].best
	for i := range out {
		for _, c := range out[i].Clusters {
			sort.Ints(c)
		}
		sort.Slice(out[i].Clusters, func(x, y int) bool {
			return out[i].Clusters[x][0] < out[i].Clusters[y][0]
		})
	}
	return out
}
