// Package segment implements the paper's §5.3.2: finding the R highest
// scoring TopK answers over a linear embedding, where a grouping of the
// working set is a segmentation of the ordering and the TopK answer
// identity is the set of K large segments.
//
// The DP follows the paper's Ans_R(k, i, ℓ) recursion: within a slice of
// the search space indexed by ℓ, every non-top segment ("small") has
// length at most ℓ and every top segment ("large") has length greater
// than ℓ. To keep the ℓ-slices disjoint — so that the Marginal mode can
// sum grouping scores without double counting — each segmentation is
// canonically assigned ℓ = the length of its largest small segment (0
// when all records are inside top segments), enforced by tracking whether
// a small segment of length exactly ℓ has been used.
//
// Two semirings:
//
//   - Viterbi: an answer's score is the best single grouping supporting
//     it (max-plus); the returned Full field is that witness.
//   - Marginal: an answer's score is log Σ exp(score) over all groupings
//     supporting it, per the paper's definition "the score of a TopK
//     answer is the sum of the score of all groupings where C1…CK are the
//     K largest clusters" (read in Gibbs/log space).
//
// Segment lengths cap at the scorer's MaxWidth — the paper's "not
// considering any cluster including too many dissimilar points".
package segment

import (
	"math"
	"sort"
	"strconv"

	"topkdedup/internal/score"
)

// Segment is a contiguous run of ordering positions, inclusive.
type Segment struct {
	Start, End int
}

// Len returns the number of positions covered.
func (s Segment) Len() int { return s.End - s.Start + 1 }

// Mode selects the scoring semiring.
type Mode int

// Modes.
const (
	Viterbi Mode = iota
	Marginal
)

// Answer is one TopK answer: K large segments plus its score under the
// selected Mode and a witness segmentation.
type Answer struct {
	Score   float64
	TopSegs []Segment // the K top segments, by start position
	Full    []Segment // highest-scoring full segmentation supporting the answer
}

// chain node for persistent segmentation reconstruction.
type segNode struct {
	seg  Segment
	big  bool
	prev *segNode
}

type entry struct {
	score float64 // semiring score
	wit   float64 // best single-grouping score (witness selection)
	key   string  // canonical identity of big segments so far
	node  *segNode
}

// TopR returns up to R highest-scoring TopK answers for the ordered
// working set represented by sc. K must be >= 1. When fewer than K
// segments fit (n < K) the result is empty.
func TopR(sc *score.SegmentScorer, K, R int, mode Mode) []Answer {
	n, w := sc.N(), sc.MaxWidth()
	if K < 1 || R < 1 || n < K {
		return nil
	}
	final := make(map[string]entry)
	maxSmall := w - 1 // a big segment needs length >= ℓ+1 <= w
	if maxSmall > n-K {
		// With K big segments of length >= ℓ+1 covering > K·ℓ positions,
		// small segments cover at most n−K·(ℓ+1); ℓ can't exceed n−K.
		maxSmall = n - K
	}
	for l := 0; l <= maxSmall; l++ {
		for _, e := range runSlice(sc, K, R, l, mode) {
			merge(final, e, mode)
		}
	}
	return finalize(final, K, R)
}

// runSlice runs the DP for one canonical ℓ value and returns the entries
// of Ans(K, n, ℓ) with the exact-ℓ requirement satisfied.
func runSlice(sc *score.SegmentScorer, K, R, l int, mode Mode) []entry {
	n, w := sc.N(), sc.MaxWidth()
	// dp[i][k][e]: top-R entries for the first i positions with k big
	// segments and e = "a small segment of length exactly ℓ exists".
	dp := make([][][2][]entry, n+1)
	for i := range dp {
		dp[i] = make([][2][]entry, K+1)
	}
	e0 := 0
	if l == 0 {
		e0 = 1 // no small segments at all means "max small length is 0"
	}
	dp[0][0][e0] = []entry{{score: 0, wit: 0, key: "", node: nil}}

	for i := 1; i <= n; i++ {
		for k := 0; k <= K; k++ {
			for e := 0; e <= 1; e++ {
				cands := make(map[string]entry)
				// Small segment of length j ending at position i-1.
				maxJ := l
				if maxJ > i {
					maxJ = i
				}
				for j := 1; j <= maxJ; j++ {
					var srcs [][]entry
					if j == l {
						if e == 1 {
							srcs = [][]entry{dp[i-j][k][0], dp[i-j][k][1]}
						}
					} else {
						srcs = [][]entry{dp[i-j][k][e]}
					}
					if srcs == nil {
						continue
					}
					s := sc.Score(i-j, i-1)
					seg := Segment{Start: i - j, End: i - 1}
					for _, src := range srcs {
						for _, pe := range src {
							merge(cands, extend(pe, seg, false, s, mode), mode)
						}
					}
				}
				// Big segment of length j in [ℓ+1, w] ending at i-1.
				if k >= 1 {
					hi := w
					if hi > i {
						hi = i
					}
					for j := l + 1; j <= hi; j++ {
						s := sc.Score(i-j, i-1)
						seg := Segment{Start: i - j, End: i - 1}
						for _, pe := range dp[i-j][k-1][e] {
							merge(cands, extend(pe, seg, true, s, mode), mode)
						}
					}
				}
				dp[i][k][e] = topEntries(cands, R)
			}
		}
	}
	return dp[n][K][1]
}

// extend appends a segment to a partial entry.
func extend(pe entry, seg Segment, big bool, s float64, mode Mode) entry {
	key := pe.key
	if big {
		key += "|" + strconv.Itoa(seg.Start) + ":" + strconv.Itoa(seg.End)
	}
	return entry{
		score: pe.score + s,
		wit:   pe.wit + s,
		key:   key,
		node:  &segNode{seg: seg, big: big, prev: pe.node},
	}
}

// merge folds e into the by-identity candidate map under the semiring.
func merge(m map[string]entry, e entry, mode Mode) {
	old, ok := m[e.key]
	if !ok {
		m[e.key] = e
		return
	}
	switch mode {
	case Marginal:
		combined := logAddExp(old.score, e.score)
		best := old
		if e.wit > old.wit {
			best = e
		}
		best.score = combined
		m[e.key] = best
	default: // Viterbi
		if e.score > old.score {
			m[e.key] = e
		}
	}
}

func topEntries(m map[string]entry, r int) []entry {
	out := make([]entry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].key < out[j].key
	})
	if len(out) > r {
		out = out[:r]
	}
	return out
}

func finalize(m map[string]entry, K, R int) []Answer {
	entries := topEntries(m, R)
	answers := make([]Answer, 0, len(entries))
	for _, e := range entries {
		ans := Answer{Score: e.score}
		for node := e.node; node != nil; node = node.prev {
			ans.Full = append(ans.Full, node.seg)
			if node.big {
				ans.TopSegs = append(ans.TopSegs, node.seg)
			}
		}
		reverseSegs(ans.Full)
		reverseSegs(ans.TopSegs)
		if len(ans.TopSegs) != K {
			continue // defensive; cannot happen by construction
		}
		answers = append(answers, ans)
	}
	return answers
}

func reverseSegs(s []Segment) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func logAddExp(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(b, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// Best returns the highest-scoring unconstrained segmentation (no TopK
// structure): the grouping used for the Figure-7 quality comparison
// against the exact correlation-clustering optimum.
func Best(sc *score.SegmentScorer) ([]Segment, float64) {
	n, w := sc.N(), sc.MaxWidth()
	if n == 0 {
		return nil, 0
	}
	const negInf = math.MaxFloat64
	dpScore := make([]float64, n+1)
	back := make([]int, n+1)
	for i := 1; i <= n; i++ {
		dpScore[i] = -negInf
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			s := dpScore[j] + sc.Score(j, i-1)
			if s > dpScore[i] {
				dpScore[i] = s
				back[i] = j
			}
		}
	}
	var segs []Segment
	for i := n; i > 0; i = back[i] {
		segs = append(segs, Segment{Start: back[i], End: i - 1})
	}
	reverseSegs(segs)
	return segs, dpScore[n]
}

// Clusters converts a segmentation over an ordering back to item-id
// clusters: order[pos] gives the item at each position.
func Clusters(segs []Segment, order []int) [][]int {
	out := make([][]int, len(segs))
	for i, s := range segs {
		c := make([]int, 0, s.Len())
		for p := s.Start; p <= s.End; p++ {
			c = append(c, order[p])
		}
		sort.Ints(c)
		out[i] = c
	}
	return out
}
