package segment

import (
	"sort"

	"topkdedup/internal/score"
)

// Ranked is one segmentation with its total score.
type Ranked struct {
	Score float64
	Segs  []Segment
}

// BestR returns the R highest-scoring segmentations of the ordered
// working set (standard k-best segmentation DP, no TopK structure). It
// generalises Best: BestR(sc, 1)[0] is the optimum.
//
// The engine uses BestR rather than the length-stratified TopR for answer
// generation over collapsed groups: group weights are heterogeneous there,
// so a "largest segments by position count" stratification can exclude
// the highest-scoring grouping when segment lengths tie (see
// Engine.finalPhase). TopR remains the paper-faithful construction for
// unit-weight records.
func BestR(sc *score.SegmentScorer, r int) []Ranked {
	n, w := sc.N(), sc.MaxWidth()
	if n == 0 || r < 1 {
		return nil
	}
	type cell struct {
		score    float64
		prevPos  int // start of the last segment
		prevRank int // which entry of dp[prevPos] it extends
	}
	// dp[i] holds up to r best scores for the first i positions.
	dp := make([][]cell, n+1)
	dp[0] = []cell{{score: 0, prevPos: -1}}
	for i := 1; i <= n; i++ {
		var cands []cell
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			s := sc.Score(j, i-1)
			for rank, pe := range dp[j] {
				cands = append(cands, cell{score: pe.score + s, prevPos: j, prevRank: rank})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].score != cands[b].score {
				return cands[a].score > cands[b].score
			}
			if cands[a].prevPos != cands[b].prevPos {
				return cands[a].prevPos > cands[b].prevPos
			}
			return cands[a].prevRank < cands[b].prevRank
		})
		if len(cands) > r {
			cands = cands[:r]
		}
		dp[i] = cands
	}
	out := make([]Ranked, 0, len(dp[n]))
	for rank := range dp[n] {
		var segs []Segment
		pos, rk := n, rank
		for pos > 0 {
			c := dp[pos][rk]
			segs = append(segs, Segment{Start: c.prevPos, End: pos - 1})
			pos, rk = c.prevPos, c.prevRank
		}
		reverseSegs(segs)
		out = append(out, Ranked{Score: dp[n][rank].score, Segs: segs})
	}
	return out
}
