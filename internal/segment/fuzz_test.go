package segment

import (
	"testing"

	"topkdedup/internal/score"
)

// FuzzSegmentDP feeds the R-best segmentation DP arbitrary pair-score
// tables (derived deterministically from the fuzz bytes) and checks its
// structural contract: no panics, ranked scores non-increasing in rank,
// every segmentation tiles [0, n) with segments no wider than the band,
// and rank 1 agreeing with the single-best DP. ci.sh runs a short
// -fuzztime smoke over the committed corpus.
func FuzzSegmentDP(f *testing.F) {
	f.Add([]byte{3, 2, 2, 0x10, 0x90, 0x7f})
	f.Add([]byte{8, 3, 4, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{1, 1, 1, 0xff})
	f.Add([]byte{12, 12, 5, 0x80, 0x40, 0xc0, 0x20})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip("need header bytes")
		}
		n := 1 + int(data[0])%14
		maxWidth := 1 + int(data[1])%n
		r := 1 + int(data[2])%5
		body := data[3:]
		// Deterministic symmetric pair scores in [-8, +7.9] driven by the
		// remaining fuzz bytes.
		pair := func(i, j int) float64 {
			if i > j {
				i, j = j, i
			}
			b := body[(i*31+j*17)%len(body)]
			return float64(int8(b)) / 16
		}
		sc := score.NewSegmentScorer(n, maxWidth, pair, nil)
		ranked := BestR(sc, r)
		if len(ranked) == 0 || len(ranked) > r {
			t.Fatalf("BestR returned %d segmentations for r=%d, n=%d", len(ranked), r, n)
		}
		for ri, rk := range ranked {
			if ri > 0 && rk.Score > ranked[ri-1].Score {
				t.Fatalf("rank %d score %v exceeds rank %d score %v (n=%d w=%d r=%d)",
					ri+1, rk.Score, ri, ranked[ri-1].Score, n, maxWidth, r)
			}
			at := 0
			for si, seg := range rk.Segs {
				if seg.Start != at || seg.End < seg.Start {
					t.Fatalf("rank %d segment %d is [%d,%d], expected to start at %d", ri+1, si, seg.Start, seg.End, at)
				}
				if seg.Len() > maxWidth {
					t.Fatalf("rank %d segment %d width %d exceeds band %d", ri+1, si, seg.Len(), maxWidth)
				}
				at = seg.End + 1
			}
			if at != n {
				t.Fatalf("rank %d segmentation covers [0,%d), want [0,%d)", ri+1, at, n)
			}
		}
		// The optimum must agree with the dedicated single-best DP.
		segs, best := Best(sc)
		if best != ranked[0].Score {
			t.Fatalf("Best score %v != BestR rank 1 score %v (n=%d w=%d)", best, ranked[0].Score, n, maxWidth)
		}
		if len(segs) == 0 {
			t.Fatalf("Best returned no segments for n=%d", n)
		}
	})
}
