package eval

import (
	"bytes"
	"strings"
	"testing"

	"topkdedup/internal/records"
)

func labelled() *records.Dataset {
	d := records.New("t", "x")
	d.Append(1, "A", "1") // 0
	d.Append(1, "A", "2") // 1
	d.Append(1, "A", "3") // 2
	d.Append(1, "B", "4") // 3
	d.Append(1, "B", "5") // 4
	d.Append(1, "", "6")  // 5 unlabelled
	return d
}

func TestPairF1Perfect(t *testing.T) {
	d := labelled()
	m := PairF1(d, [][]int{{0, 1, 2}, {3, 4}, {5}})
	if m.F1 != 1 || m.Precision != 1 || m.Recall != 1 {
		t.Errorf("perfect clustering scored %+v", m)
	}
	if m.ActualPairs != 4 || m.PredictedPairs != 4 || m.TruePairs != 4 {
		t.Errorf("pair counts wrong: %+v", m)
	}
}

func TestPairF1Split(t *testing.T) {
	d := labelled()
	// Splitting A into {0,1} and {2} loses 2 of 3 A-pairs.
	m := PairF1(d, [][]int{{0, 1}, {2}, {3, 4}})
	if m.Precision != 1 {
		t.Errorf("precision = %v, want 1", m.Precision)
	}
	if m.Recall != 0.5 {
		t.Errorf("recall = %v, want 0.5 (2 of 4 pairs)", m.Recall)
	}
}

func TestPairF1OverMerge(t *testing.T) {
	d := labelled()
	m := PairF1(d, [][]int{{0, 1, 2, 3, 4}})
	if m.Recall != 1 {
		t.Errorf("recall = %v, want 1", m.Recall)
	}
	if m.Precision != 0.4 {
		t.Errorf("precision = %v, want 0.4 (4 of 10 pairs)", m.Precision)
	}
}

func TestPairF1MissingRecordsAreSingletons(t *testing.T) {
	d := labelled()
	// Only cluster part of the data; rest implicitly singleton.
	m := PairF1(d, [][]int{{0, 1}})
	if m.TruePairs != 1 || m.PredictedPairs != 1 {
		t.Errorf("partial clustering counts wrong: %+v", m)
	}
}

func TestPairF1Empty(t *testing.T) {
	d := records.New("t", "x")
	m := PairF1(d, nil)
	if m.F1 != 0 || m.Precision != 0 || m.Recall != 0 {
		t.Errorf("empty should be all zero: %+v", m)
	}
}

func TestAgreementF1(t *testing.T) {
	ref := [][]int{{0, 1, 2}, {3, 4}}
	if m := AgreementF1(5, ref, ref); m.F1 != 1 {
		t.Errorf("self agreement = %+v", m)
	}
	pred := [][]int{{0, 1}, {2}, {3, 4}}
	m := AgreementF1(5, pred, ref)
	if m.Precision != 1 || m.Recall != 0.5 {
		t.Errorf("agreement = %+v", m)
	}
	// Disjoint clusterings.
	m2 := AgreementF1(4, [][]int{{0, 1}, {2, 3}}, [][]int{{0, 2}, {1, 3}})
	if m2.F1 != 0 {
		t.Errorf("disjoint agreement F1 = %v, want 0", m2.F1)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("K", "n%", "note")
	tbl.AddRow(1, 67.22, "first")
	tbl.AddRow(1000, 30.06, "last row long")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "K ") || !strings.Contains(lines[0], "n%") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "67.22") {
		t.Errorf("float formatting wrong: %q", lines[2])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestTableRenderGolden(t *testing.T) {
	tbl := NewTable("dataset", "recs", "F1")
	tbl.AddRow("address", 268, 1.0)
	tbl.AddRow("restaurant", 866, 0.77)
	var buf bytes.Buffer
	tbl.Render(&buf)
	want := "" +
		"dataset     recs  F1\n" +
		"----------  ----  ----\n" +
		"address     268   1.00\n" +
		"restaurant  866   0.77\n"
	if got := buf.String(); got != want {
		t.Errorf("rendered table differs from golden output:\ngot:\n%swant:\n%s", got, want)
	}
}

func TestBCubedPerfect(t *testing.T) {
	d := labelled()
	m := BCubed(d, [][]int{{0, 1, 2}, {3, 4}})
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("perfect clustering scored %+v", m)
	}
}

func TestBCubedOverMerge(t *testing.T) {
	d := labelled()
	m := BCubed(d, [][]int{{0, 1, 2, 3, 4}})
	if m.Recall != 1 {
		t.Errorf("recall = %v, want 1", m.Recall)
	}
	// Precision: A records see 3/5, B records 2/5 -> (3*0.6 + 2*0.4)/5 = 0.52
	if !closeEnough(m.Precision, 0.52) {
		t.Errorf("precision = %v, want 0.52", m.Precision)
	}
}

func TestBCubedSplit(t *testing.T) {
	d := labelled()
	m := BCubed(d, [][]int{{0, 1}, {2}, {3, 4}})
	if m.Precision != 1 {
		t.Errorf("precision = %v, want 1", m.Precision)
	}
	// Recall: the two A records in {0,1} each see 2/3 of A, the split-off
	// A record sees 1/3, both B records see 1: (2/3+2/3+1/3+1+1)/5 = 11/15.
	if !closeEnough(m.Recall, 11.0/15.0) {
		t.Errorf("recall = %v, want 11/15", m.Recall)
	}
}

func TestBCubedMissingRecordsSingletons(t *testing.T) {
	d := labelled()
	// Only cluster {0,1}; 2 is an implicit singleton: its precision is 1,
	// recall 1/3.
	m := BCubed(d, [][]int{{0, 1}})
	if m.Precision != 1 {
		t.Errorf("precision = %v, want 1", m.Precision)
	}
	want := (2.0/3 + 2.0/3 + 1.0/3 + 0.5 + 0.5) / 5
	if !closeEnough(m.Recall, want) {
		t.Errorf("recall = %v, want %v", m.Recall, want)
	}
}

func TestBCubedAllSingletons(t *testing.T) {
	d := labelled()
	m := BCubed(d, [][]int{{0}, {1}, {2}, {3}, {4}, {5}})
	// Every singleton is pure, so precision 1; each record recalls only
	// itself: A records 1/3 each, B records 1/2 each -> (3/3 + 2/2)/5 = 0.4.
	if m.Precision != 1 {
		t.Errorf("precision = %v, want 1", m.Precision)
	}
	if !closeEnough(m.Recall, 0.4) {
		t.Errorf("recall = %v, want 0.4", m.Recall)
	}
}

func TestBCubedAbsentEverywhereEqualsSingletons(t *testing.T) {
	// Records absent from every cluster must score exactly as if each
	// were its own singleton cluster — here, with no clusters at all,
	// the whole dataset.
	d := labelled()
	absent := BCubed(d, nil)
	explicit := BCubed(d, [][]int{{0}, {1}, {2}, {3}, {4}, {5}})
	if absent != explicit {
		t.Errorf("no-cluster run %+v != explicit singletons %+v", absent, explicit)
	}
	if absent.Precision != 1 || !closeEnough(absent.Recall, 0.4) {
		t.Errorf("singleton fallback scored %+v", absent)
	}
}

func TestBCubedEmpty(t *testing.T) {
	m := BCubed(records.New("e", "x"), nil)
	if m.F1 != 0 {
		t.Errorf("empty = %+v", m)
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
