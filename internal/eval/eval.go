// Package eval provides the evaluation utilities of the paper's §6:
// pairwise F1 agreement between clusterings (Figure 7's metric), the
// pruning statistics tables of Figures 2-4, and fixed-width text table
// rendering for the benchmark harness.
package eval

import (
	"fmt"
	"io"
	"strings"

	"topkdedup/internal/records"
)

// PairMetrics holds pairwise precision/recall/F1 of a predicted
// clustering against reference labels.
type PairMetrics struct {
	Precision, Recall, F1 float64
	TruePairs             int64 // same-cluster pairs that are truly duplicates
	PredictedPairs        int64 // same-cluster pairs predicted
	ActualPairs           int64 // duplicate pairs in the reference
}

// PairF1 scores predicted clusters (record-ID groups) against the
// dataset's ground-truth labels: a pair of records counts as predicted
// positive when both land in the same cluster, and as actually positive
// when they share a truth label. Records missing from clusters are
// treated as singletons.
func PairF1(d *records.Dataset, clusters [][]int) PairMetrics {
	clusterOf := make([]int, d.Len())
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	for ci, c := range clusters {
		for _, id := range c {
			clusterOf[id] = ci
		}
	}
	var m PairMetrics
	// Predicted pairs and true positives per cluster.
	for _, c := range clusters {
		n := int64(len(c))
		m.PredictedPairs += n * (n - 1) / 2
		byTruth := map[string]int64{}
		for _, id := range c {
			if t := d.Recs[id].Truth; t != "" {
				byTruth[t]++
			}
		}
		for _, cnt := range byTruth {
			m.TruePairs += cnt * (cnt - 1) / 2
		}
	}
	for _, ids := range d.TruthGroups() {
		n := int64(len(ids))
		m.ActualPairs += n * (n - 1) / 2
	}
	if m.PredictedPairs > 0 {
		m.Precision = float64(m.TruePairs) / float64(m.PredictedPairs)
	}
	if m.ActualPairs > 0 {
		m.Recall = float64(m.TruePairs) / float64(m.ActualPairs)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// AgreementF1 scores a predicted clustering against a reference
// clustering (rather than truth labels): the Figure-7 comparison "treats
// as positive any pair of records that appears in the same cluster in the
// LP (reference), and negative otherwise".
func AgreementF1(n int, predicted, reference [][]int) PairMetrics {
	predOf := assignment(n, predicted)
	refOf := assignment(n, reference)
	var m PairMetrics
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			samePred := predOf[i] >= 0 && predOf[i] == predOf[j]
			sameRef := refOf[i] >= 0 && refOf[i] == refOf[j]
			if samePred {
				m.PredictedPairs++
			}
			if sameRef {
				m.ActualPairs++
			}
			if samePred && sameRef {
				m.TruePairs++
			}
		}
	}
	if m.PredictedPairs > 0 {
		m.Precision = float64(m.TruePairs) / float64(m.PredictedPairs)
	}
	if m.ActualPairs > 0 {
		m.Recall = float64(m.TruePairs) / float64(m.ActualPairs)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

func assignment(n int, clusters [][]int) []int {
	of := make([]int, n)
	for i := range of {
		of[i] = -1
	}
	for ci, c := range clusters {
		for _, id := range c {
			if id >= 0 && id < n {
				of[id] = ci
			}
		}
	}
	return of
}

// Table renders fixed-width text tables for the harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}
