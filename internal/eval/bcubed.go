package eval

import "topkdedup/internal/records"

// BCubed computes the B-cubed precision/recall/F1 of a predicted
// clustering against the dataset's truth labels — the standard
// entity-resolution complement to pairwise F1 (Bagga & Baldwin 1998):
// per record, precision is the fraction of its cluster sharing its label
// and recall the fraction of its label's records in its cluster,
// averaged over labelled records. Records missing from clusters count as
// singletons.
func BCubed(d *records.Dataset, clusters [][]int) PairMetrics {
	clusterOf := make([]int, d.Len())
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	for ci, c := range clusters {
		for _, id := range c {
			clusterOf[id] = ci
		}
	}
	// Label counts per cluster (singletons keyed by -1-id).
	type key struct{ cluster, pseudo int }
	labelInCluster := map[key]map[string]int{}
	clusterSize := map[key]int{}
	keyOf := func(id int) key {
		if clusterOf[id] >= 0 {
			return key{cluster: clusterOf[id], pseudo: -1}
		}
		return key{cluster: -1, pseudo: id}
	}
	truthSize := map[string]int{}
	for _, r := range d.Recs {
		if r.Truth == "" {
			continue
		}
		k := keyOf(r.ID)
		if labelInCluster[k] == nil {
			labelInCluster[k] = map[string]int{}
		}
		labelInCluster[k][r.Truth]++
		clusterSize[k]++
		truthSize[r.Truth]++
	}
	var m PairMetrics
	var pSum, rSum float64
	labelled := 0
	for _, r := range d.Recs {
		if r.Truth == "" {
			continue
		}
		labelled++
		k := keyOf(r.ID)
		same := labelInCluster[k][r.Truth]
		pSum += float64(same) / float64(clusterSize[k])
		rSum += float64(same) / float64(truthSize[r.Truth])
	}
	if labelled == 0 {
		return m
	}
	m.Precision = pSum / float64(labelled)
	m.Recall = rSum / float64(labelled)
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}
