package topk

import "testing"

func TestStreamFacade(t *testing.T) {
	st, err := NewStream("feed", []string{"name"}, toyLevels())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStream("bad", []string{"name"}, nil); err == nil {
		t.Fatal("empty levels must error")
	}
	st.Add(1, "E1", "a.v0")
	st.Add(1, "E1", "a.v0")
	st.Add(2, "E2", "b.v0")
	if st.Len() != 3 {
		t.Fatalf("Len = %d", st.Len())
	}
	res, err := st.TopK(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Groups))
	}
	if res.Groups[0].Weight != 2 {
		t.Errorf("top weight = %v, want 2", res.Groups[0].Weight)
	}
	// Incremental state reflected in Groups.
	groups := st.Groups()
	if len(groups) != 2 {
		t.Errorf("collapsed groups = %d, want 2", len(groups))
	}
	// The exposed dataset can seed a full engine for scored answers.
	eng := New(st.Dataset(), toyLevels(), oracleScorer(), Config{})
	full, err := eng.TopK(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Answers) != 1 || len(full.Answers[0].Groups) != 2 {
		t.Errorf("engine over stream dataset: %+v", full.Answers)
	}
}
