// Package topk answers TopK count queries over data with imprecise
// duplicates, implementing Sarawagi, Deshpande & Kasliwal, "Efficient
// Top-K Count Queries over Imprecise Duplicates" (EDBT 2009).
//
// Given a dataset whose records are noisy mentions of entities, the
// engine finds the K entities with the largest aggregate weight (count,
// score, ...) without deduplicating the whole dataset: cheap sufficient
// predicates collapse sure duplicates, cheap necessary predicates bound
// how large any group can grow, and everything that provably cannot reach
// the K largest groups is pruned (paper §4). Because duplicate resolution
// is inherently uncertain, the engine can return the R highest-scoring
// answers instead of a single hard one, via a polynomial-time
// segmentation search over a linear embedding of the surviving records
// (paper §5).
//
// # Quick start
//
//	eng := topk.New(dataset, levels, scorer, topk.Config{})
//	res, err := eng.TopK(10, 3) // 3 best answers to the Top-10 query
//
// Levels supply the sufficient/necessary predicate schedule; the scorer
// is any signed pairwise duplicate scorer (e.g. a trained
// classifier.Model). See examples/ for end-to-end programs.
package topk

import (
	"topkdedup/internal/core"
	"topkdedup/internal/predicate"
	"topkdedup/internal/records"
)

// Record is one noisy mention of an entity.
type Record = records.Record

// Dataset is an ordered collection of records with a field schema.
type Dataset = records.Dataset

// NewDataset creates an empty dataset with the given schema.
func NewDataset(name string, schema ...string) *Dataset {
	return records.New(name, schema...)
}

// LoadDataset reads a dataset from a TSV file written by Dataset.SaveTSV.
func LoadDataset(name, path string) (*Dataset, error) {
	return records.LoadTSV(name, path)
}

// LoadDatasetCSV reads a dataset from a CSV file with a
// "weight,truth,fields..." header (see Dataset.SaveCSV).
func LoadDatasetCSV(name, path string) (*Dataset, error) {
	return records.LoadCSV(name, path)
}

// Predicate is a cheap pairwise predicate with blocking keys. Use it to
// declare sufficient predicates (true ⇒ duplicates) and necessary
// predicates (duplicates ⇒ true).
type Predicate = predicate.P

// Level pairs one sufficient with one necessary predicate; the engine
// runs levels in order of increasing cost and tightness.
type Level = predicate.Level

// Group is a set of records established to be duplicates of one entity.
type Group = core.Group

// LevelStats reports one pruning iteration (the columns of the paper's
// Figures 2-4: n, m, M, n′).
type LevelStats = core.LevelStats

// PairScorer is the final, expensive duplicate criterion P: a signed
// score, positive for duplicates, negative for non-duplicates, with
// magnitude reflecting confidence. classifier.Model implements it.
type PairScorer interface {
	Score(a, b *Record) float64
}

// PairScorerFunc adapts a plain function to PairScorer.
type PairScorerFunc func(a, b *Record) float64

// Score implements PairScorer.
func (f PairScorerFunc) Score(a, b *Record) float64 { return f(a, b) }
