package topk

import (
	"context"
	"sort"

	"topkdedup/internal/core"
	"topkdedup/internal/embed"
	"topkdedup/internal/obs"
	"topkdedup/internal/score"
	"topkdedup/internal/segment"
)

// DedupResult is the output of Engine.Dedup: a full partition of the
// dataset into entity groups.
type DedupResult struct {
	// Groups are the entity groups in decreasing weight.
	Groups []AnswerGroup
	// Score is the correlation-clustering score of the grouping relative
	// to leaving every sure-duplicate component separate (higher is
	// better; 0 means the scorer endorsed no merges).
	Score float64
}

// Dedup fully deduplicates the dataset: sufficient predicates collapse
// sure duplicates, the scorer resolves the rest via the embedding +
// best-segmentation search over each necessary-predicate component. This
// is the classic batch deduplication the paper's TopK machinery
// specialises; it is provided for completeness and for building
// reference answers.
//
// With a nil scorer the sure-duplicate components themselves are
// returned.
func (e *Engine) Dedup() (*DedupResult, error) {
	sp := obs.StartSpan(e.cfg.Metrics, "engine.dedup")
	defer sp.End()
	d := e.data
	groups := coreSingletons(d)
	for _, level := range e.levels {
		var evals int64
		groups, evals = core.CollapseWorkers(d, groups, level.Sufficient, e.cfg.Workers)
		obs.Count(e.cfg.Metrics, "core.collapse.evals", evals)
	}
	if e.scorer == nil {
		res := &DedupResult{}
		for _, g := range groups {
			res.Groups = append(res.Groups, AnswerGroup{Records: g.Members, Weight: g.Weight, Rep: g.Rep})
		}
		sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Weight > res.Groups[j].Weight })
		return res, nil
	}

	n := len(groups)
	lastN := e.levels[len(e.levels)-1].Necessary
	fs, _ := e.scoredCandidates(context.Background(), groups, lastN)
	defer fs.release()
	pairScore, edges := fs.pairScore, fs.edges
	pf := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		if s, ok := pairScore[[2]int{i, j}]; ok {
			return s
		}
		return e.cfg.NonCandidatePenalty
	}
	order := embed.Greedy(n, pf, edges, embed.Options{Alpha: e.cfg.EmbedAlpha})
	posPF := func(a, b int) float64 { return pf(order[a], order[b]) }
	width := e.cfg.MaxGroupWidth
	if width > n {
		width = n
	}
	sc := score.NewSegmentScorer(n, width, posPF, nil)
	defer sc.Release()
	segs, best := segment.Best(sc)
	var base float64
	for p := 0; p < n; p++ {
		base += sc.Score(p, p)
	}

	res := &DedupResult{Score: best - base}
	for _, clusterIdx := range segment.Clusters(segs, order) {
		ag := AnswerGroup{}
		bestW := -1.0
		for _, gi := range clusterIdx {
			g := groups[gi]
			ag.Records = append(ag.Records, g.Members...)
			ag.Weight += g.Weight
			if g.Weight > bestW {
				bestW = g.Weight
				ag.Rep = g.Rep
			}
		}
		sort.Ints(ag.Records)
		res.Groups = append(res.Groups, ag)
	}
	sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Weight > res.Groups[j].Weight })
	return res, nil
}

// coreSingletons wraps every record in its own group (mirrors the
// unexported core helper).
func coreSingletons(d *Dataset) []Group {
	groups := make([]Group, d.Len())
	for i, r := range d.Recs {
		groups[i] = Group{Rep: r.ID, Members: []int{r.ID}, Weight: r.Weight}
	}
	return groups
}
