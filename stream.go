package topk

import (
	"topkdedup/internal/core"
	"topkdedup/internal/stream"
)

// Stream is an incremental accumulator for evolving sources: records are
// appended as they arrive, the sufficient-predicate collapse is
// maintained per insertion, and TopK queries pay only the K-dependent
// phases. See examples/newsfeed for an end-to-end use.
type Stream = stream.Incremental

// StreamResult is the result of Stream.TopK: the surviving collapsed
// groups (in decreasing weight) and the per-level pruning statistics.
// Unlike Engine.TopK it does not run the final R-best scoring phase; for
// that, hand Stream.Dataset() to New and query the engine.
type StreamResult = core.Result

// NewStream creates an empty incremental accumulator with the given
// schema and predicate schedule.
func NewStream(name string, schema []string, levels []Level) (*Stream, error) {
	return stream.New(name, schema, levels)
}
