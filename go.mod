module topkdedup

go 1.22
