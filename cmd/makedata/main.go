// Command makedata generates the synthetic benchmark datasets to TSV or
// CSV files, for use with dedupcli or external tools.
//
// Usage:
//
//	makedata -dataset citations -records 20000 -out citations.tsv
//	makedata -dataset students  -records 10000 -out students.csv
//	makedata -dataset addresses -records 20000 -seed 7 -out addr.tsv
//	makedata -dataset restaurant -records 900 -out rest.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"topkdedup/internal/datagen"
	"topkdedup/internal/records"
)

func main() {
	dataset := flag.String("dataset", "citations", "dataset family: citations, students, addresses, restaurant, authors, getoor")
	target := flag.Int("records", 10000, "approximate number of records")
	seed := flag.Int64("seed", 0, "override the generator seed (0 keeps the default)")
	out := flag.String("out", "", "output file (.tsv or .csv; required)")
	noise := flag.Float64("noise", 0, "override noise level in (0, 1] (0 keeps the default)")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	d, err := generate(*dataset, *target, *seed, *noise)
	if err != nil {
		fmt.Fprintln(os.Stderr, "makedata:", err)
		os.Exit(1)
	}
	switch {
	case strings.HasSuffix(*out, ".csv"):
		err = d.SaveCSV(*out)
	default:
		err = d.SaveTSV(*out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "makedata:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d %s records (%d entities) to %s\n",
		d.Len(), *dataset, len(d.TruthGroups()), *out)
}

func generate(dataset string, target int, seed int64, noise float64) (*records.Dataset, error) {
	switch dataset {
	case "citations":
		cfg := datagen.DefaultCitationConfig(target)
		if seed != 0 {
			cfg.Seed = seed
		}
		if noise > 0 {
			cfg.Noise = noise
		}
		return datagen.Citations(cfg), nil
	case "students":
		cfg := datagen.DefaultStudentConfig(target)
		if seed != 0 {
			cfg.Seed = seed
		}
		if noise > 0 {
			cfg.Noise = noise
		}
		return datagen.Students(cfg), nil
	case "addresses":
		cfg := datagen.DefaultAddressConfig(target)
		if seed != 0 {
			cfg.Seed = seed
		}
		if noise > 0 {
			cfg.Noise = noise
		}
		return datagen.Addresses(cfg), nil
	case "restaurant":
		cfg := datagen.RestaurantConfig{Seed: 22, NumRestaurants: target * 5 / 6, Noise: 0.8}
		if seed != 0 {
			cfg.Seed = seed
		}
		if noise > 0 {
			cfg.Noise = noise
		}
		return datagen.Restaurants(cfg), nil
	case "authors":
		s := int64(21)
		if seed != 0 {
			s = seed
		}
		return datagen.AuthorNames(s, target), nil
	case "getoor":
		s := int64(24)
		if seed != 0 {
			s = seed
		}
		return datagen.Getoor(s, target), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", dataset)
}
