// Command obscheck keeps the observability registry honest: the metric
// and trace span names the code emits must match the names documented
// in OBSERVABILITY.md, in both directions, and the registry itself must
// survive the Prometheus name mangling losslessly. ci.sh runs it over
// every emitting package, so a new emission without a registry row — or
// a registry row whose emission was renamed or deleted — fails the
// build.
//
// Usage:
//
//	obscheck -doc OBSERVABILITY.md <package-dir> [<package-dir>...]
//	obscheck -doc OBSERVABILITY.md -prom scrape.txt [<package-dir>...]
//
// Each argument is one package directory (not recursive; test files are
// skipped). internal/obs itself is scannable: its generic helpers pass
// names through variables, which read as pure wildcards and are
// skipped, while its literal emissions (the runtime sampler) check like
// any other package's.
//
// Code side. obscheck scans call expressions by callee name:
//
//   - Count / Gauge / Observe emit the metric name as written;
//   - StartSpan / ObserveSince / ObserveDuration emit "<name>.seconds"
//     (the obs duration convention);
//   - StartChild / StartTrace / Event, and the repo's thin wrappers
//     traceCtx / shardSpan / workerSpan / startQuerySpan, emit trace
//     span (or span event) names.
//
// The first string-shaped argument that looks like a dotted lower-case
// name is taken; concatenation with a non-literal part becomes a `*`
// segment (so `"server.http."+name+".requests"` reads as
// `server.http.*.requests`).
//
// Doc side. Every backticked dotted lower-case token in the doc is an
// allowed name (`<placeholder>` segments read as `*`); tokens in the
// first cell of a markdown table row form the registry proper, and the
// second cell names the row's kind (counter / gauge / observation).
// Checks:
//
//  1. every emitted name must match an allowed name;
//  2. every registry row must match at least one emitted name;
//  3. every registry metric row must mangle to a valid Prometheus
//     family name (obs.PromName + `_total` for counters), injectively —
//     two rows may not collide after mangling;
//  4. the registry must carry at least one row per ops-health prefix
//     (`runtime.`, `slo.`, `audit.`, `wal.`).
//
// With -prom, the file is additionally parsed as a Prometheus text
// exposition (obs.CheckExposition: declared types, monotone buckets,
// consistent _sum/_count) and every scraped family must match a
// documented name — a live scrape may not carry an undocumented
// metric. -prom with no package dirs runs the doc-side and exposition
// checks only.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"topkdedup/internal/obs"
)

// nameRE is the shape of a registry name: dotted lower-case segments,
// possibly with `*` wildcards from concatenation or placeholders.
var nameRE = regexp.MustCompile(`^[a-z*][a-z0-9_*]*(\.[a-z0-9_*]+)+$`)

// promNameRE is the shape of a valid Prometheus family name.
var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// metricEmitters map a callee name to the suffix appended to the name
// argument ("" for metrics and span names, ".seconds" for durations).
var metricEmitters = map[string]string{
	"Count":           "",
	"Gauge":           "",
	"Observe":         "",
	"StartSpan":       ".seconds",
	"ObserveSince":    ".seconds",
	"ObserveDuration": ".seconds",
	"StartChild":      "",
	"StartTrace":      "",
	"Event":           "",
	"traceCtx":        "",
	"shardSpan":       "",
	"workerSpan":      "",
	"startQuerySpan":  "",
}

// opsPrefixes are the registry prefixes the ops-health surface depends
// on; each must keep at least one registry row.
var opsPrefixes = []string{"runtime.", "slo.", "audit.", "wal."}

func main() {
	doc := flag.String("doc", "OBSERVABILITY.md", "registry document to check against")
	promFile := flag.String("prom", "", "Prometheus exposition file to validate against the registry")
	flag.Parse()
	if flag.NArg() == 0 && *promFile == "" {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-doc OBSERVABILITY.md] [-prom scrape.txt] <package-dir> [<package-dir>...]")
		os.Exit(2)
	}

	data, err := os.ReadFile(*doc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(2)
	}
	allowed, registry, kinds := parseDoc(string(data))

	emitted := map[string][]string{} // name -> positions
	for _, dir := range flag.Args() {
		if err := scanDir(dir, emitted); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
	}

	bad := 0
	var names []string
	for n := range emitted {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !matchesAny(n, allowed) {
			fmt.Printf("%s: emitted name %q is not in %s\n", emitted[n][0], n, *doc)
			bad++
		}
	}
	var rows []string
	for r := range registry {
		rows = append(rows, r)
	}
	sort.Strings(rows)
	if flag.NArg() > 0 {
		for _, r := range rows {
			found := false
			for n := range emitted {
				if matchNames(n, r) {
					found = true
					break
				}
			}
			if !found {
				fmt.Printf("%s: registry row %q has no emitting call in the scanned packages\n", *doc, r)
				bad++
			}
		}
	}

	bad += checkMangling(*doc, rows, kinds)
	bad += checkOpsPrefixes(*doc, rows)
	if *promFile != "" {
		bad += checkPromFile(*promFile, allowed)
	}

	if bad > 0 {
		fmt.Fprintf(os.Stderr, "obscheck: %d registry mismatch(es)\n", bad)
		os.Exit(1)
	}
}

// checkMangling verifies every registry metric row survives the
// Prometheus mangling: a valid family name, and no two rows colliding
// after the dots collapse to underscores (`*` segments stand in as a
// literal sample segment, "x").
func checkMangling(doc string, rows []string, kinds map[string]string) int {
	bad := 0
	families := map[string]string{} // mangled family -> source row
	for _, r := range rows {
		kind, ok := kinds[r]
		if !ok {
			continue // span rows and kindless tables have no exposition form
		}
		fam := obs.PromName(strings.ReplaceAll(r, "*", "x"))
		if kind == "counter" {
			fam += "_total"
		}
		if !promNameRE.MatchString(fam) {
			fmt.Printf("%s: registry row %q mangles to invalid Prometheus name %q\n", doc, r, fam)
			bad++
			continue
		}
		if prev, dup := families[fam]; dup {
			fmt.Printf("%s: registry rows %q and %q collide as Prometheus family %q\n", doc, prev, r, fam)
			bad++
			continue
		}
		families[fam] = r
	}
	return bad
}

// checkOpsPrefixes requires the ops-health registry sections to stay
// populated.
func checkOpsPrefixes(doc string, rows []string) int {
	bad := 0
	for _, prefix := range opsPrefixes {
		found := false
		for _, r := range rows {
			if strings.HasPrefix(r, prefix) {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%s: no registry row under the %q prefix\n", doc, prefix)
			bad++
		}
	}
	return bad
}

// checkPromFile validates a scraped exposition and diffs every family
// against the documented names.
func checkPromFile(path string, allowed map[string]bool) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		return 1
	}
	defer f.Close()
	families, err := obs.CheckExposition(f)
	if err != nil {
		fmt.Printf("%s: exposition does not parse: %v\n", path, err)
		return 1
	}
	if len(families) == 0 {
		fmt.Printf("%s: exposition declares no families\n", path)
		return 1
	}
	var patterns []*regexp.Regexp
	for tok := range allowed {
		patterns = append(patterns, promTokenRE(tok))
	}
	bad := 0
	for _, fam := range families {
		found := false
		for _, p := range patterns {
			if p.MatchString(fam) {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%s: scraped family %q matches no documented name\n", path, fam)
			bad++
		}
	}
	return bad
}

// promTokenRE compiles one documented dotted token into a regexp over
// mangled family names: literal runs mangle via obs.PromName, `*`
// wildcards span one or more mangled segments, and counters may carry
// the `_total` suffix.
func promTokenRE(tok string) *regexp.Regexp {
	var b strings.Builder
	b.WriteString("^")
	for i, part := range strings.Split(tok, "*") {
		if i > 0 {
			b.WriteString(`[a-zA-Z0-9_]+`)
		}
		b.WriteString(regexp.QuoteMeta(obs.PromName(part)))
	}
	b.WriteString(`(_total)?$`)
	return regexp.MustCompile(b.String())
}

// matchesAny reports whether name matches any pattern in the set.
func matchesAny(name string, set map[string]bool) bool {
	if set[name] {
		return true
	}
	for p := range set {
		if matchNames(name, p) {
			return true
		}
	}
	return false
}

// matchNames compares two dotted names segment-wise; a `*` segment on
// either side matches anything.
func matchNames(a, b string) bool {
	as, bs := strings.Split(a, "."), strings.Split(b, ".")
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] && as[i] != "*" && bs[i] != "*" {
			return false
		}
	}
	return true
}

// backtickRE captures backticked tokens; placeholderRE rewrites
// `<placeholder>` segments to `*` before shape-checking.
var (
	backtickRE    = regexp.MustCompile("`([^`]+)`")
	placeholderRE = regexp.MustCompile(`<[^<>]+>`)
)

// parseDoc extracts the allowed name set (every backticked dotted token
// in the doc), the registry set (first-cell tokens of table rows), and
// each registry row's kind (the second table cell, when it names one).
func parseDoc(doc string) (allowed, registry map[string]bool, kinds map[string]string) {
	allowed, registry = map[string]bool{}, map[string]bool{}
	kinds = map[string]string{}
	for _, line := range strings.Split(doc, "\n") {
		first := true
		trimmed := strings.TrimSpace(line)
		inTable := strings.HasPrefix(trimmed, "|")
		kind := ""
		if inTable {
			if cells := strings.Split(trimmed, "|"); len(cells) > 2 {
				switch k := strings.TrimSpace(cells[2]); k {
				case "counter", "gauge", "observation":
					kind = k
				}
			}
		}
		for _, m := range backtickRE.FindAllStringSubmatch(line, -1) {
			tok := placeholderRE.ReplaceAllString(m[1], "*")
			if nameRE.MatchString(tok) {
				allowed[tok] = true
				if inTable && first {
					registry[tok] = true
					if kind != "" {
						kinds[tok] = kind
					}
				}
			}
			first = false
		}
	}
	return allowed, registry, kinds
}

// scanDir parses one package directory's non-test files and collects
// every emitted name with its first position.
func scanDir(dir string, emitted map[string][]string) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return err
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				suffix, ok := metricEmitters[calleeName(call.Fun)]
				if !ok {
					return true
				}
				for _, arg := range call.Args {
					s, isStr := evalString(arg)
					if !isStr {
						continue
					}
					name := s + suffix
					if !nameRE.MatchString(name) {
						continue
					}
					p := fset.Position(call.Pos())
					emitted[name] = append(emitted[name], fmt.Sprintf("%s:%d", p.Filename, p.Line))
					break
				}
				return true
			})
		}
	}
	return nil
}

// calleeName unwraps a call's function expression to its base name
// (`obs.Count` -> "Count", `s.metrics.Observe` -> "Observe").
func calleeName(fun ast.Expr) string {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// evalString folds an expression to a name string: literals keep their
// value, non-literal parts of a concatenation become one `*` segment.
// Returns false when no literal part is present at all.
func evalString(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.BasicLit:
		if x.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(x.Value)
		if err != nil {
			return "", false
		}
		return s, true
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return "", false
		}
		l, lok := evalString(x.X)
		r, rok := evalString(x.Y)
		if !lok && !rok {
			return "", false
		}
		if !lok {
			l = "*"
		}
		if !rok {
			r = "*"
		}
		return l + r, true
	case *ast.ParenExpr:
		return evalString(x.X)
	}
	return "", false
}
