// Command doccheck enforces the repository's documentation discipline.
// It has two modes, selected per argument:
//
//   - A package directory: every exported top-level identifier must
//     carry a doc comment. ci.sh runs this over the API-bearing
//     packages so exported surface cannot silently grow undocumented.
//   - A markdown file (argument ending in .md): every repo-path
//     reference the document makes — inline-code tokens under
//     internal/, cmd/, or examples/, and relative link targets — must
//     exist on disk, so design references (INCREMENTAL.md,
//     OBSERVABILITY.md, ...) cannot drift to naming files or packages
//     that were renamed away.
//
// Usage:
//
//	doccheck ./internal/core ./internal/parallel . INCREMENTAL.md
//
// Package arguments are directories (not recursive). Exported
// functions, methods on exported types, type declarations, and
// const/var specs are checked; a doc comment on the enclosing
// const/var/type block covers all its specs. Exit status 1 lists every
// undocumented identifier / dangling doc reference with its position.
package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir|doc.md> [...]")
		os.Exit(2)
	}
	bad := 0
	for _, arg := range os.Args[1:] {
		check := checkDir
		if strings.HasSuffix(arg, ".md") {
			check = checkDoc
		}
		missing, err := check(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", arg, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d documentation failure(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file of one package directory and
// returns "file:line: name" strings for undocumented exported
// identifiers.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return missing, nil
}

// checkFunc flags exported functions, and exported methods whose
// receiver type is itself exported (methods on unexported types are not
// part of the package surface).
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	name := d.Name.Name
	if d.Recv != nil && len(d.Recv.List) > 0 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv != "" && !ast.IsExported(recv) {
			return
		}
		kind = "method"
		name = recv + "." + name
	}
	report(d.Pos(), kind, name)
}

// checkGen flags exported types and const/var specs. A doc comment on
// the grouped declaration documents every spec in it, matching godoc's
// rendering of const/var blocks.
func checkGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && s.Doc == nil && d.Doc == nil && s.Comment == nil {
					report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
				}
			}
		}
	}
}

// checkDoc scans one markdown file for repo-path references that do not
// resolve on disk, relative to the file's directory. Two reference
// forms are checked: inline-code tokens (`internal/...`, `cmd/...`,
// `examples/...`) and relative markdown link targets. Fenced code
// blocks are skipped — shell transcripts legitimately mention
// ephemeral files.
func checkDoc(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	root := filepath.Dir(path)
	var missing []string
	exists := func(rel string) bool {
		if _, err := os.Stat(filepath.Join(root, rel)); err == nil {
			return true
		}
		// A package-qualified symbol (`internal/intern.Table`) resolves
		// through its package directory.
		if i := strings.LastIndexByte(rel, '.'); i > 0 {
			if _, err := os.Stat(filepath.Join(root, rel[:i])); err == nil {
				return true
			}
		}
		return false
	}
	inFence := false
	sc := bufio.NewScanner(f)
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, tok := range inlineCode(line) {
			if !pathLike(tok) {
				continue
			}
			if !exists(tok) {
				missing = append(missing, fmt.Sprintf("%s:%d: reference `%s` does not exist", path, n, tok))
			}
		}
		for _, target := range linkTargets(line) {
			if !exists(target) {
				missing = append(missing, fmt.Sprintf("%s:%d: link target %q does not exist", path, n, target))
			}
		}
	}
	return missing, sc.Err()
}

// inlineCode returns the contents of every single-backtick span on the
// line.
func inlineCode(line string) []string {
	var toks []string
	for {
		i := strings.IndexByte(line, '`')
		if i < 0 {
			return toks
		}
		j := strings.IndexByte(line[i+1:], '`')
		if j < 0 {
			return toks
		}
		toks = append(toks, line[i+1:i+1+j])
		line = line[i+j+2:]
	}
}

// pathLike reports whether an inline-code token is a checkable repo
// path: rooted at internal/, cmd/, or examples/, with a plain-filename
// character set (no flags, placeholders, URLs, or endpoint paths).
func pathLike(tok string) bool {
	tok = strings.TrimSuffix(tok, "/")
	if !strings.HasPrefix(tok, "internal/") && !strings.HasPrefix(tok, "cmd/") &&
		!strings.HasPrefix(tok, "examples/") {
		return false
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-' || c == '/':
		default:
			return false
		}
	}
	return true
}

// linkTargets returns the relative-file targets of the line's markdown
// links: `](target)` occurrences that are not absolute URLs or
// in-page anchors, with any #fragment stripped.
func linkTargets(line string) []string {
	var targets []string
	for {
		i := strings.Index(line, "](")
		if i < 0 {
			return targets
		}
		rest := line[i+2:]
		j := strings.IndexByte(rest, ')')
		if j < 0 {
			return targets
		}
		target := rest[:j]
		line = rest[j+1:]
		if frag := strings.IndexByte(target, '#'); frag >= 0 {
			target = target[:frag]
		}
		if target == "" || strings.Contains(target, "://") || strings.ContainsAny(target, " <>") {
			continue
		}
		targets = append(targets, target)
	}
}

// receiverName unwraps a method receiver type expression to its base
// type identifier.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
