// Command doccheck enforces the repository's godoc discipline: every
// exported top-level identifier in the packages it is pointed at must
// carry a doc comment. ci.sh runs it over the API-bearing packages
// (internal/core, internal/parallel, internal/strsim, the root topk
// package, internal/obs) so exported surface cannot silently grow
// undocumented.
//
// Usage:
//
//	doccheck ./internal/core ./internal/parallel .
//
// Each argument is a package directory (not recursive). Exported
// functions, methods on exported types, type declarations, and
// const/var specs are checked; a doc comment on the enclosing
// const/var/type block covers all its specs. Exit status 1 lists every
// undocumented identifier with its position.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [<package-dir>...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file of one package directory and
// returns "file:line: name" strings for undocumented exported
// identifiers.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return missing, nil
}

// checkFunc flags exported functions, and exported methods whose
// receiver type is itself exported (methods on unexported types are not
// part of the package surface).
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	name := d.Name.Name
	if d.Recv != nil && len(d.Recv.List) > 0 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv != "" && !ast.IsExported(recv) {
			return
		}
		kind = "method"
		name = recv + "." + name
	}
	report(d.Pos(), kind, name)
}

// checkGen flags exported types and const/var specs. A doc comment on
// the grouped declaration documents every spec in it, matching godoc's
// rendering of const/var blocks.
func checkGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && s.Doc == nil && d.Doc == nil && s.Comment == nil {
					report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
				}
			}
		}
	}
}

// receiverName unwraps a method receiver type expression to its base
// type identifier.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
