// The -crash-smoke self-test: a parent topkd SIGKILLs a child topkd in
// the middle of an ingest stream, restarts it against the same WAL
// directory, and verifies recovery — every acknowledged batch is back,
// no batch is half-applied, and the reborn server both answers queries
// and accepts new ingests. ci.sh runs this as the durability smoke; the
// byte-level recovery guarantees are pinned by the crash-recovery
// property tests in internal/server.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"topkdedup/internal/server"
)

// crashBatchSize is the records per ingest batch in the smoke; recovery
// must report a whole multiple of it (batch atomicity).
const crashBatchSize = 5

// child is one spawned topkd process under test.
type child struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startChild launches a fresh topkd serving on an ephemeral port with
// durability on, and parses the listen address from its stderr.
func startChild(walDir string) (*child, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe,
		"-addr", "127.0.0.1:0",
		"-wal", walDir,
		"-schema", "name",
		"-refresh-every", "0",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	// The listen line is the startup handshake; everything after it is
	// drained so the child never blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "topkd: listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("crash-smoke: child exited before announcing its address")
	}
	go io.Copy(io.Discard, stderr)
	return &child{cmd: cmd, base: "http://" + addr}, nil
}

// ingestCrashBatch posts one batch of distinct names and reports the
// server's acceptance.
func ingestCrashBatch(client *http.Client, base string, batchIdx int) (server.IngestResponse, error) {
	var req server.IngestRequest
	for i := 0; i < crashBatchSize; i++ {
		req.Records = append(req.Records, server.IngestRecord{
			Values: []string{fmt.Sprintf("entity-%03d variant-%d", batchIdx, i)},
		})
	}
	data, err := json.Marshal(req)
	if err != nil {
		return server.IngestResponse{}, err
	}
	resp, err := client.Post(base+"/ingest", "application/json", bytes.NewReader(data))
	if err != nil {
		return server.IngestResponse{}, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.IngestResponse{}, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var ing server.IngestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		return server.IngestResponse{}, err
	}
	return ing, nil
}

// crashSmoke is the -crash-smoke entry point.
func crashSmoke() error {
	walDir, err := os.MkdirTemp("", "topkd-crash-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	client := &http.Client{Timeout: 10 * time.Second}

	first, err := startChild(walDir)
	if err != nil {
		return err
	}
	defer func() {
		first.cmd.Process.Kill()
		first.cmd.Wait()
	}()

	// Acknowledge a few batches, then SIGKILL while one more is in
	// flight — the kill lands mid-ingest, so that last batch may or may
	// not have reached the log; every acknowledged one must have.
	const ackedTarget = 3
	acked := 0
	for ; acked < ackedTarget; acked++ {
		if _, err := ingestCrashBatch(client, first.base, acked); err != nil {
			return fmt.Errorf("crash-smoke: ingest batch %d: %w", acked, err)
		}
	}
	inflight := make(chan error, 1)
	go func() {
		_, err := ingestCrashBatch(client, first.base, ackedTarget)
		inflight <- err
	}()
	time.Sleep(2 * time.Millisecond)
	if err := first.cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown hooks run
		return fmt.Errorf("crash-smoke: kill: %w", err)
	}
	first.cmd.Wait()
	sent := ackedTarget + 1
	if err := <-inflight; err == nil {
		// The in-flight batch won the race and was acknowledged before
		// the kill took effect: it too must be recovered.
		acked = sent
	}

	second, err := startChild(walDir)
	if err != nil {
		return fmt.Errorf("crash-smoke: restart: %w", err)
	}
	defer func() {
		second.cmd.Process.Kill()
		second.cmd.Wait()
	}()
	var health server.HealthResponse
	if err := getJSON(client, second.base+"/healthz", &health); err != nil {
		return fmt.Errorf("crash-smoke: healthz after restart: %w", err)
	}
	recovered := health.Records
	switch {
	case recovered < acked*crashBatchSize:
		return fmt.Errorf("crash-smoke: recovered %d records, lost acknowledged data (acked %d batches of %d)",
			recovered, acked, crashBatchSize)
	case recovered > sent*crashBatchSize:
		return fmt.Errorf("crash-smoke: recovered %d records, more than the %d ever sent", recovered, sent*crashBatchSize)
	case recovered%crashBatchSize != 0:
		return fmt.Errorf("crash-smoke: recovered %d records — a torn (half-applied) batch survived", recovered)
	}
	if health.SnapshotRecords != recovered {
		return fmt.Errorf("crash-smoke: recovered records not queryable: snapshot has %d of %d",
			health.SnapshotRecords, recovered)
	}
	var tk server.TopKResponse
	if err := getJSON(client, second.base+"/topk?k=3&r=1", &tk); err != nil {
		return fmt.Errorf("crash-smoke: topk after restart: %w", err)
	}
	if tk.Result == nil || len(tk.Result.Answers) == 0 {
		return fmt.Errorf("crash-smoke: empty topk result after restart")
	}
	// The recovered log must still accept appends.
	ing, err := ingestCrashBatch(client, second.base, sent)
	if err != nil {
		return fmt.Errorf("crash-smoke: ingest after restart: %w", err)
	}
	if ing.Records != recovered+crashBatchSize {
		return fmt.Errorf("crash-smoke: post-restart ingest total %d, want %d", ing.Records, recovered+crashBatchSize)
	}

	// Graceful shutdown closes the WAL cleanly.
	if err := second.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := second.cmd.Wait(); err != nil {
		return fmt.Errorf("crash-smoke: graceful shutdown: %w", err)
	}
	fmt.Printf("topkd: crash smoke OK (killed mid-ingest after %d acked batches, recovered %d records)\n",
		acked, recovered)
	return nil
}
