// Command topkd serves TopK count queries over HTTP while records keep
// arriving. It wraps internal/server around the generic field-similarity
// domain (the same predicates and scorer dedupcli uses), so a running
// daemon answers the paper's TopK, R-best, and rank queries against a
// live, growing dataset.
//
// Endpoints (see SERVING.md for the full API reference):
//
//	POST /ingest    JSON record batches
//	POST /refresh   force a snapshot publication
//	GET  /topk      TopK count query (?k=&r=)
//	GET  /rank      rank query (?k= or ?t=)
//	GET  /healthz   liveness, snapshot freshness, build info, SLO status
//	GET  /metrics   JSON metrics, or Prometheus text with ?format=prom
//	GET  /slo       per-endpoint SLO burn-rate report
//
// Usage:
//
//	topkd -addr :8080 -schema name,addr -field name
//	topkd -addr :8080 -field name -in seed.tsv      (warm-start from TSV)
//	topkd -addr :8080 -shards 4                     (in-process sharded pruning)
//	topkd -addr :8080 -wal /var/lib/topkd/wal       (durable ingest, replay on boot)
//	topkd -smoke                                    (self-test and exit)
//	topkd -crash-smoke                              (SIGKILL-recovery self-test and exit)
//
// Multi-node sharding (see SHARDING.md for the worked example): start
// shard executors with -role shard, then a coordinator naming them:
//
//	topkd -role shard -addr :7601 &
//	topkd -role shard -addr :7602 &
//	topkd -role coordinator -addr :8080 -peers http://localhost:7601,http://localhost:7602
//
// Every node must be configured with the same -schema, -field, and
// -overlap (predicates are rebuilt from flags, not shipped). Ingest goes
// to the coordinator; each query partitions the snapshot across the
// peers and runs the bound-exchange protocol over their /shard/*
// endpoints.
//
// Shutdown is graceful: SIGINT/SIGTERM stops accepting connections and
// drains in-flight queries for up to 10 seconds.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	topk "topkdedup"
	"topkdedup/internal/domains"
	"topkdedup/internal/obs"
	"topkdedup/internal/server"
	"topkdedup/internal/wal"
)

// options collects every topkd flag; run consumes it whole.
type options struct {
	addr             string
	schema           string
	field            string
	overlap          float64
	refreshEvery     int
	maxInFlight      int
	requestTimeout   time.Duration
	maxBatch         int
	workers          int
	in               string
	smoke            bool
	crashSmoke       bool
	role             string
	peers            string
	shards           int
	replicate        bool
	walDir           string
	walFsync         string
	walSnapshotEvery int
	logLevel         string
	traceLimit       int
	sketchCapacity   int
	modeDefault      string
	sloTarget        time.Duration
	auditRate        float64
	runtimeSample    time.Duration
	smokeProm        string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.schema, "schema", "name", "comma-separated record field schema")
	flag.StringVar(&o.field, "field", "", "primary entity-name field (default: first schema field)")
	flag.Float64Var(&o.overlap, "overlap", 0.5, "necessary-predicate 3-gram overlap threshold")
	flag.IntVar(&o.refreshEvery, "refresh-every", 0, "snapshot policy: 0 = every batch, N > 0 = every N records, negative = only on POST /refresh")
	flag.IntVar(&o.maxInFlight, "max-inflight", 64, "bounded request queue size; excess requests get 429")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 30*time.Second, "per-request budget before a 503 (negative disables)")
	flag.IntVar(&o.maxBatch, "max-batch", 10000, "max records per ingest batch")
	flag.IntVar(&o.workers, "workers", 0, "query worker goroutines (0 = GOMAXPROCS)")
	flag.StringVar(&o.in, "in", "", "optional seed TSV/CSV to load and publish before serving")
	flag.BoolVar(&o.smoke, "smoke", false, "self-test: serve on an ephemeral port, run a client session against it, shut down, exit")
	flag.BoolVar(&o.crashSmoke, "crash-smoke", false, "self-test: SIGKILL a child topkd mid-ingest, restart it on the same WAL, verify recovery, exit")
	flag.StringVar(&o.role, "role", "standalone", "node role: standalone, coordinator (partitions queries across -peers), or shard (executes a coordinator's partition)")
	flag.StringVar(&o.peers, "peers", "", "comma-separated shard base URLs (coordinator role only)")
	flag.IntVar(&o.shards, "shards", 0, "in-process shard count for query pruning (standalone/shard roles; <= 1 disables)")
	flag.BoolVar(&o.replicate, "replicate", false, "coordinator role: place each shard on a primary + replica peer pair and fail queries over on peer loss (needs >= 2 -peers)")
	flag.StringVar(&o.walDir, "wal", "", "write-ahead log directory: ingest is logged and fsynced before it is applied, and replayed on boot (empty disables durability)")
	flag.StringVar(&o.walFsync, "wal-fsync", "always", "WAL fsync policy: always (durable on 200), interval (background ticker), or never (OS page cache)")
	flag.IntVar(&o.walSnapshotEvery, "wal-snapshot-every", 0, "write a WAL state snapshot and prune replayed segments every N ingest batches (0 = default 256, negative disables)")
	flag.StringVar(&o.logLevel, "log", "", "structured JSON request logging to stderr: debug, info, warn, or error (empty disables)")
	flag.IntVar(&o.traceLimit, "trace-limit", 0, "query traces retained for GET /debug/traces (0 = default ring, negative disables tracing)")
	flag.IntVar(&o.sketchCapacity, "sketch-capacity", 0, "monitored-set size of the approximate tier's Space-Saving sketch (0 = default, negative disables mode=approx|hybrid)")
	flag.StringVar(&o.modeDefault, "mode-default", "", "serving mode for /topk requests without ?mode=: exact, approx, or hybrid (empty = exact)")
	flag.DurationVar(&o.sloTarget, "slo-target", 0, "per-request latency SLO target; slower answers burn the error budget (0 = per-endpoint defaults)")
	flag.Float64Var(&o.auditRate, "audit-rate", 0, "fraction of served approx/hybrid answers the background accuracy auditor re-executes exactly (0 disables, 1 audits every answer)")
	flag.DurationVar(&o.runtimeSample, "runtime-sample-interval", 0, "how often the runtime health gauges (GC, heap, goroutines) refresh between scrapes (0 = default 10s, negative disables the ticker)")
	flag.StringVar(&o.smokeProm, "smoke-prom", "", "with -smoke: write the scraped Prometheus exposition to this file for external validation")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "topkd:", err)
		os.Exit(1)
	}
}

// newLogger builds the slog request logger the -log flag selects; an
// empty level means no logging (the server treats a nil logger as off).
func newLogger(level string) (*slog.Logger, error) {
	if level == "" {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log level %q (use debug, info, warn, or error)", level)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// syncPolicy maps the -wal-fsync flag to its wal.SyncPolicy.
func syncPolicy(name string) (wal.SyncPolicy, error) {
	switch name {
	case "always", "":
		return wal.SyncAlways, nil
	case "interval":
		return wal.SyncInterval, nil
	case "never":
		return wal.SyncNever, nil
	}
	return 0, fmt.Errorf("bad -wal-fsync %q (use always, interval, or never)", name)
}

func run(o options) error {
	if o.crashSmoke {
		return crashSmoke()
	}
	logger, err := newLogger(o.logLevel)
	if err != nil {
		return err
	}
	fsync, err := syncPolicy(o.walFsync)
	if err != nil {
		return err
	}
	var peerList []string
	if o.peers != "" {
		for _, p := range strings.Split(o.peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	switch o.role {
	case "standalone", "shard":
		if len(peerList) > 0 {
			return fmt.Errorf("-peers only applies to -role coordinator")
		}
		if o.replicate {
			return fmt.Errorf("-replicate only applies to -role coordinator")
		}
	case "coordinator":
		if len(peerList) == 0 {
			return fmt.Errorf("-role coordinator requires -peers")
		}
		if o.shards > 1 {
			return fmt.Errorf("-shards does not apply to -role coordinator (the shard count is the peer count)")
		}
		if o.replicate && len(peerList) < 2 {
			return fmt.Errorf("-replicate needs at least 2 -peers (each shard gets a primary and a replica on distinct peers)")
		}
	default:
		return fmt.Errorf("unknown -role %q (use standalone, coordinator, or shard)", o.role)
	}
	fields := strings.Split(o.schema, ",")
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	field := o.field
	if field == "" {
		field = fields[0]
	}
	found := false
	for _, f := range fields {
		if f == field {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("field %q not in schema %v", field, fields)
	}

	levels, scorer := domains.Generic(field, o.overlap)
	srv, err := server.New(server.Config{
		Schema:                fields,
		Levels:                levels,
		Scorer:                topk.PairScorerFunc(scorer),
		Engine:                topk.Config{Workers: o.workers, Shards: o.shards},
		RefreshEvery:          o.refreshEvery,
		MaxInFlight:           o.maxInFlight,
		RequestTimeout:        o.requestTimeout,
		MaxBatch:              o.maxBatch,
		ShardPeers:            peerList,
		ShardReplicate:        o.replicate,
		WALDir:                o.walDir,
		WALOptions:            wal.Options{Sync: fsync},
		WALSnapshotEvery:      o.walSnapshotEvery,
		TraceLimit:            o.traceLimit,
		SketchCapacity:        o.sketchCapacity,
		DefaultMode:           o.modeDefault,
		SLO:                   server.SLOConfig{LatencyTarget: o.sloTarget},
		AuditRate:             o.auditRate,
		RuntimeSampleInterval: o.runtimeSample,
		Logger:                logger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if n := srv.Recovered(); n > 0 {
		fmt.Fprintf(os.Stderr, "topkd: recovered %d records from WAL %s\n", n, o.walDir)
	}

	if o.in != "" {
		// A WAL that already holds records wins over the seed file: the
		// recovered state includes the original seed (Seed logs it), and
		// seeding again would double every record.
		if srv.Recovered() > 0 {
			fmt.Fprintf(os.Stderr, "topkd: skipping -in %s (state recovered from WAL)\n", o.in)
		} else {
			var d *topk.Dataset
			if strings.HasSuffix(o.in, ".csv") {
				d, err = topk.LoadDatasetCSV("seed", o.in)
			} else {
				d, err = topk.LoadDataset("seed", o.in)
			}
			if err != nil {
				return err
			}
			n, err := srv.Seed(d)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "topkd: seeded %d records from %s\n", n, o.in)
		}
	}

	addr := o.addr
	if o.smoke {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	// The "listening on" line keeps its exact shape: crashsmoke.go (and
	// any wrapper script) parses it to learn the ephemeral port.
	version, goVersion := server.BuildInfo()
	fmt.Fprintf(os.Stderr, "topkd: version %s, %s\n", version, goVersion)
	fmt.Fprintf(os.Stderr, "topkd: listening on %s\n", ln.Addr())
	if logger != nil {
		logger.Info("topkd started",
			"version", version, "go", goVersion, "addr", ln.Addr().String(), "role", o.role)
	}

	if o.smoke {
		err := smokeSession("http://"+ln.Addr().String(), o.smokeProm)
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := hs.Shutdown(sctx); err == nil {
			err = serr
		}
		<-serveErr // always http.ErrServerClosed after Shutdown
		if err == nil {
			fmt.Println("topkd: smoke OK")
		}
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "topkd: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	<-serveErr
	return nil
}

// smokeSession drives one end-to-end client session: health check,
// ingest, query, metrics (JSON and Prometheus), SLO report. Any
// unexpected status or malformed body is an error; ci.sh runs this as
// the serving-layer start/stop smoke test. A non-empty promOut names a
// file the scraped Prometheus exposition is written to, so ci.sh can
// diff a real scrape against the OBSERVABILITY.md registry with
// `obscheck -prom`.
func smokeSession(base, promOut string) error {
	client := &http.Client{Timeout: 10 * time.Second}

	var health server.HealthResponse
	if err := getJSON(client, base+"/healthz", &health); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if !health.OK {
		return fmt.Errorf("healthz: not ok")
	}
	if health.Status != "ok" || health.Version == "" || health.GoVersion == "" {
		return fmt.Errorf("healthz: build info missing: %+v", health)
	}

	batch := server.IngestRequest{Records: []server.IngestRecord{
		{Values: []string{"acme corp"}},
		{Values: []string{"acme corp."}},
		{Values: []string{"acme corporation"}},
		{Values: []string{"globex"}},
		{Values: []string{"globex inc"}},
		{Values: []string{"initech"}},
	}}
	data, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/ingest", "application/json", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest: status %d: %s", resp.StatusCode, body)
	}
	var ing server.IngestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if ing.Accepted != len(batch.Records) {
		return fmt.Errorf("ingest: accepted %d of %d", ing.Accepted, len(batch.Records))
	}

	var tk server.TopKResponse
	if err := getJSON(client, base+"/topk?k=2&r=1", &tk); err != nil {
		return fmt.Errorf("topk: %w", err)
	}
	if tk.Result == nil || len(tk.Result.Answers) == 0 {
		return fmt.Errorf("topk: empty result")
	}
	if tk.Records != len(batch.Records) {
		return fmt.Errorf("topk: snapshot has %d records, want %d", tk.Records, len(batch.Records))
	}

	var rk server.RankResponse
	if err := getJSON(client, base+"/rank?k=2", &rk); err != nil {
		return fmt.Errorf("rank: %w", err)
	}
	if rk.Result == nil {
		return fmt.Errorf("rank: empty result")
	}

	// Answer-cache round trip (INCREMENTAL.md): a repeated query on the
	// unchanged epoch must be served from the per-epoch cache, and the
	// X-Cache header must say so.
	if xc, err := getCacheHeader(client, base+"/topk?k=3&r=1"); err != nil {
		return fmt.Errorf("topk cache miss probe: %w", err)
	} else if xc != "miss" {
		return fmt.Errorf("topk cache probe: first query X-Cache=%q, want \"miss\"", xc)
	}
	if xc, err := getCacheHeader(client, base+"/topk?k=3&r=1"); err != nil {
		return fmt.Errorf("topk cache hit probe: %w", err)
	} else if xc != "hit" {
		return fmt.Errorf("topk cache probe: repeat query X-Cache=%q, want \"hit\"", xc)
	}

	// Approximate-tier round trip (SERVING.md "Approximate tier"): approx
	// must answer with sketch entries and the X-Approx-Bound header, a
	// misspelled mode must be a typed 400 (never a silent exact answer),
	// and hybrid must serve immediately while naming the exact tier's
	// state.
	ar, bound, err := getApprox(client, base+"/topk?mode=approx&k=2")
	if err != nil {
		return fmt.Errorf("topk approx: %w", err)
	}
	if ar.Mode != "approx" || len(ar.Entries) == 0 {
		return fmt.Errorf("topk approx: bad answer %+v", ar)
	}
	if bound == "" {
		return fmt.Errorf("topk approx: no %s header", server.XApproxBound)
	}
	if resp, err := client.Get(base + "/topk?mode=aprox"); err != nil {
		return fmt.Errorf("topk mode typo probe: %w", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			return fmt.Errorf("topk mode typo probe: status %d, want 400", resp.StatusCode)
		}
	}
	hr, _, err := getApprox(client, base+"/topk?mode=hybrid&k=2")
	if err != nil {
		return fmt.Errorf("topk hybrid: %w", err)
	}
	if hr.Exact != "cached" && hr.Exact != "refreshing" {
		return fmt.Errorf("topk hybrid: exact tier state %q", hr.Exact)
	}

	// EXPLAIN + tracing round trip: the explain query must return the
	// report, name its trace, and that trace must be fetchable in both
	// the JSON and the Chrome trace_event shapes.
	var ex server.TopKResponse
	if err := getJSON(client, base+"/topk?k=2&r=1&explain=1", &ex); err != nil {
		return fmt.Errorf("topk explain: %w", err)
	}
	if ex.Result == nil || ex.Result.Explain == nil {
		return fmt.Errorf("topk explain: no explain report in result")
	}
	if ex.TraceID == "" {
		return fmt.Errorf("topk explain: no trace_id in response")
	}
	var tr server.TraceResponse
	if err := getJSON(client, base+"/debug/traces?trace="+ex.TraceID, &tr); err != nil {
		return fmt.Errorf("debug/traces: %w", err)
	}
	if len(tr.Spans) == 0 {
		return fmt.Errorf("debug/traces: no spans recorded for trace %s", ex.TraceID)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := getJSON(client, base+"/debug/traces?trace="+ex.TraceID+"&format=chrome", &chrome); err != nil {
		return fmt.Errorf("debug/traces chrome: %w", err)
	}
	if len(chrome.TraceEvents) == 0 {
		return fmt.Errorf("debug/traces chrome: empty trace_event array")
	}

	var met server.MetricsResponse
	if err := getJSON(client, base+"/metrics", &met); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if met.Latency["topk"].Count == 0 {
		return fmt.Errorf("metrics: no topk latency samples recorded")
	}

	// Prometheus exposition round trip: the scrape must declare the
	// documented content type and parse cleanly (declared types, monotone
	// buckets, consistent _sum/_count).
	resp, err = client.Get(base + "/metrics?format=prom")
	if err != nil {
		return fmt.Errorf("metrics prom: %w", err)
	}
	promBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics prom: status %d: %s", resp.StatusCode, promBody)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		return fmt.Errorf("metrics prom: Content-Type %q, want %q", ct, obs.PromContentType)
	}
	families, err := obs.CheckExposition(bytes.NewReader(promBody))
	if err != nil {
		return fmt.Errorf("metrics prom: exposition does not parse: %v", err)
	}
	if len(families) == 0 {
		return fmt.Errorf("metrics prom: empty exposition")
	}
	if promOut != "" {
		if err := os.WriteFile(promOut, promBody, 0o644); err != nil {
			return fmt.Errorf("metrics prom: %w", err)
		}
	}

	// SLO report round trip: the default objectives must be live and a
	// fast smoke session must not have burnt its error budget.
	var slo server.SLOResponse
	if err := getJSON(client, base+"/slo", &slo); err != nil {
		return fmt.Errorf("slo: %w", err)
	}
	if len(slo.Objectives) == 0 {
		return fmt.Errorf("slo: no objectives reported")
	}
	if slo.Degraded {
		return fmt.Errorf("slo: smoke session reported degraded: %+v", slo.Objectives)
	}
	return nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

// getApprox issues one approximate-tier GET and returns the decoded
// body plus the X-Approx-Bound header value.
func getApprox(client *http.Client, url string) (*server.ApproxTopKResponse, string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var ar server.ApproxTopKResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		return nil, "", err
	}
	return &ar, resp.Header.Get(server.XApproxBound), nil
}

// getCacheHeader issues one GET and returns the X-Cache answer-cache
// verdict of the response.
func getCacheHeader(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return resp.Header.Get("X-Cache"), nil
}
