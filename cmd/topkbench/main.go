// Command topkbench regenerates the tables and figures of the paper's
// evaluation section (§6) on the synthetic dataset analogues.
//
// Usage:
//
//	topkbench -exp all                # every experiment at default scale
//	topkbench -exp fig2 -scale full   # citation pruning table, paper-size data
//	topkbench -exp fig7 -exp fig6     # selected experiments
//
// Experiments: table1, fig2, fig3, fig4, fig6, fig7, passes, embed, rank,
// stream, serve, shard, inc, approx, all. Scales: small, default, full
// (record counts in DESIGN.md §5).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strings"
	"time"

	"topkdedup/internal/experiments"
	"topkdedup/internal/obs"
	"topkdedup/internal/parallel"
	"topkdedup/internal/servebench"
)

// benchReport is the machine-readable form of one topkbench run, written
// by -json so the repo can track a BENCH_*.json perf trajectory across
// changes.
type benchReport struct {
	Timestamp   string            `json:"timestamp"`
	Scale       string            `json:"scale"`
	NumCPU      int               `json:"num_cpu"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Experiments []benchExperiment `json:"experiments"`
}

// benchExperiment records one experiment's wall clock plus, where the
// experiment produces them, its per-point timing rows (predicate evals,
// survivor counts, worker-pool bound) and the per-phase metrics
// breakdown collected while it ran (counters, gauges, and duration /
// size histograms under the OBSERVABILITY.md names — collapse, lower
// bound, prune passes, exact clustering, final scoring, pool).
type benchExperiment struct {
	Name      string                  `json:"name"`
	ElapsedMS float64                 `json:"elapsed_ms"`
	Rows      []experiments.TimingRow `json:"timing_rows,omitempty"`
	// ServeRows carries the serving benchmark's per-endpoint exact
	// latency quantiles (serve experiment only).
	ServeRows []servebench.Row `json:"serve_rows,omitempty"`
	// ShardRows carries the sharded-coordinator sweep's per-cell timing
	// and bound-exchange statistics (shard experiment only).
	ShardRows []experiments.ShardRow `json:"shard_rows,omitempty"`
	// IncRows carries the incremental-serving grid: delta apply, cache
	// miss, cache hit, and from-scratch latencies per ingest-batch size ×
	// touched-component fraction cell (inc experiment only).
	IncRows []servebench.IncRow `json:"inc_rows,omitempty"`
	// ApproxRows carries the approximate-tier capacity sweep: sketch
	// read vs exact cache-hit vs exact-miss latency, interval
	// containment, and bound tightness per capacity (approx experiment
	// only).
	ApproxRows []servebench.ApproxRow `json:"approx_rows,omitempty"`
	Phases     *obs.Snapshot          `json:"phases,omitempty"`
}

type expFlag []string

func (e *expFlag) String() string { return strings.Join(*e, ",") }
func (e *expFlag) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			*e = append(*e, part)
		}
	}
	return nil
}

func main() {
	var exps expFlag
	flag.Var(&exps, "exp", "experiment to run (repeatable / comma separated): table1, fig2, fig3, fig4, fig6, fig7, passes, embed, rank, stream, serve, shard, inc, approx, all")
	scaleName := flag.String("scale", "default", "dataset scale: small, default, full")
	jsonPath := flag.String("json", "", "write a machine-readable benchReport of the run to this path")
	workersFlag := flag.String("workers", "", "comma-separated worker-pool bounds for the fig6 sweep (default \"1,<NumCPU>\"; 0 = NumCPU)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	workerSweep := []int{1, runtime.NumCPU()}
	if *workersFlag != "" {
		workerSweep = workerSweep[:0]
		for _, part := range strings.Split(*workersFlag, ",") {
			var w int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &w); err != nil {
				fmt.Fprintf(os.Stderr, "bad -workers value %q\n", part)
				os.Exit(2)
			}
			if w <= 0 {
				w = runtime.NumCPU()
			}
			workerSweep = append(workerSweep, w)
		}
	}

	if len(exps) == 0 {
		exps = expFlag{"all"}
	}
	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale
	case "default":
		scale = experiments.DefaultScale
	case "full":
		scale = experiments.FullScale
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range exps {
		want[e] = true
	}
	all := want["all"]
	report := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      *scaleName,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	run := func(name string, fn func() ([]experiments.TimingRow, error)) {
		if !all && !want[name] {
			return
		}
		fmt.Printf("== %s (scale %s) ==\n", name, *scaleName)
		// Fresh collector per experiment so the JSON report carries an
		// isolated per-phase breakdown for each one.
		col := obs.NewCollector()
		experiments.SetMetrics(col)
		parallel.SetSink(col)
		start := time.Now()
		rows, err := fn()
		elapsed := time.Since(start)
		experiments.SetMetrics(nil)
		parallel.SetSink(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		exp := benchExperiment{
			Name: name, ElapsedMS: float64(elapsed.Microseconds()) / 1000, Rows: rows,
		}
		if snap := col.Snapshot(); !snap.Empty() {
			exp.Phases = snap
		}
		report.Experiments = append(report.Experiments, exp)
		fmt.Printf("-- %s done in %s --\n\n", name, elapsed.Round(time.Millisecond))
	}
	noRows := func(fn func() error) func() ([]experiments.TimingRow, error) {
		return func() ([]experiments.TimingRow, error) { return nil, fn() }
	}

	run("table1", noRows(func() error { return runTable1(scale) }))
	run("fig2", noRows(func() error { return runPruning("fig2", scale) }))
	run("fig3", noRows(func() error { return runPruning("fig3", scale) }))
	run("fig4", noRows(func() error { return runPruning("fig4", scale) }))
	run("fig6", func() ([]experiments.TimingRow, error) { return runFig6(scale, workerSweep) })
	run("fig7", noRows(func() error { return runFig7(scale) }))
	run("passes", noRows(func() error { return runPasses(scale) }))
	run("embed", noRows(func() error { return runEmbed(scale) }))
	run("rank", noRows(func() error { return runRank(scale) }))
	run("stream", noRows(func() error { return runStream(scale) }))

	if all || want["serve"] {
		fmt.Printf("== serve (scale %s) ==\n", *scaleName)
		start := time.Now()
		serveRows, err := runServe(scale)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve failed: %v\n", err)
			os.Exit(1)
		}
		report.Experiments = append(report.Experiments, benchExperiment{
			Name: "serve", ElapsedMS: float64(elapsed.Microseconds()) / 1000, ServeRows: serveRows,
		})
		fmt.Printf("-- serve done in %s --\n\n", elapsed.Round(time.Millisecond))
	}

	if all || want["inc"] {
		fmt.Printf("== inc (scale %s) ==\n", *scaleName)
		start := time.Now()
		incRows, err := runInc(scale)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inc failed: %v\n", err)
			os.Exit(1)
		}
		report.Experiments = append(report.Experiments, benchExperiment{
			Name: "inc", ElapsedMS: float64(elapsed.Microseconds()) / 1000, IncRows: incRows,
		})
		fmt.Printf("-- inc done in %s --\n\n", elapsed.Round(time.Millisecond))
	}

	if all || want["approx"] {
		fmt.Printf("== approx (scale %s) ==\n", *scaleName)
		start := time.Now()
		approxRows, err := runApprox(scale)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approx failed: %v\n", err)
			os.Exit(1)
		}
		report.Experiments = append(report.Experiments, benchExperiment{
			Name: "approx", ElapsedMS: float64(elapsed.Microseconds()) / 1000, ApproxRows: approxRows,
		})
		fmt.Printf("-- approx done in %s --\n\n", elapsed.Round(time.Millisecond))
	}

	if all || want["shard"] {
		fmt.Printf("== shard (scale %s) ==\n", *scaleName)
		col := obs.NewCollector()
		experiments.SetMetrics(col)
		parallel.SetSink(col)
		start := time.Now()
		shardRows, err := runShard(scale, workerSweep)
		elapsed := time.Since(start)
		experiments.SetMetrics(nil)
		parallel.SetSink(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shard failed: %v\n", err)
			os.Exit(1)
		}
		exp := benchExperiment{
			Name: "shard", ElapsedMS: float64(elapsed.Microseconds()) / 1000, ShardRows: shardRows,
		}
		if snap := col.Snapshot(); !snap.Empty() {
			exp.Phases = snap
		}
		report.Experiments = append(report.Experiments, exp)
		fmt.Printf("-- shard done in %s --\n\n", elapsed.Round(time.Millisecond))
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// Dataset construction is memoized across experiments: a -exp all run
// shares one Citation dataset between fig2 and passes, one Fig7All
// result between table1 and fig7, and so on. Construction (datagen +
// classifier training) is hoisted out of the measured experiment bodies
// this way, so timings — the fig6 -workers sweep in particular —
// measure the pipeline, not dataset generation. Keys encode every
// parameter that affects construction.
var (
	setupCache   = map[string]*experiments.DomainData{}
	fig7RowCache map[int][]experiments.QualityRow
)

func cachedSetup(key string, build func() (*experiments.DomainData, error)) (*experiments.DomainData, error) {
	if dd, ok := setupCache[key]; ok {
		return dd, nil
	}
	dd, err := build()
	if err != nil {
		return nil, err
	}
	setupCache[key] = dd
	return dd, nil
}

func cachedFig7All(target int) ([]experiments.QualityRow, error) {
	if rows, ok := fig7RowCache[target]; ok {
		return rows, nil
	}
	rows, err := experiments.Fig7All(target)
	if err != nil {
		return nil, err
	}
	if fig7RowCache == nil {
		fig7RowCache = map[int][]experiments.QualityRow{}
	}
	fig7RowCache[target] = rows
	return rows, nil
}

func runPruning(which string, scale experiments.Scale) error {
	var (
		dd    *experiments.DomainData
		err   error
		title string
	)
	switch which {
	case "fig2":
		dd, err = cachedSetup(fmt.Sprintf("citations/%d", scale.Citations), func() (*experiments.DomainData, error) {
			return experiments.CitationSetup(scale.Citations, false)
		})
		title = fmt.Sprintf("Figure 2 analogue — Citation dataset: %d records", 0)
	case "fig3":
		dd, err = cachedSetup(fmt.Sprintf("students/%d", scale.Students), func() (*experiments.DomainData, error) {
			return experiments.StudentSetup(scale.Students, false)
		})
		title = "Figure 3 analogue — Student dataset"
	case "fig4":
		dd, err = cachedSetup(fmt.Sprintf("addresses/%d", scale.Addresses), func() (*experiments.DomainData, error) {
			return experiments.AddressSetup(scale.Addresses, false)
		})
		title = "Figure 4 analogue — Address dataset"
	}
	if err != nil {
		return err
	}
	if which == "fig2" {
		title = fmt.Sprintf("Figure 2 analogue — Citation dataset: %d records", dd.Data.Len())
	} else {
		title = fmt.Sprintf("%s: %d records", title, dd.Data.Len())
	}
	ks := experiments.KsForScale(dd.Data.Len())
	rows, err := experiments.PruningSweep(dd, ks, 2)
	if err != nil {
		return err
	}
	experiments.RenderPruneTable(os.Stdout, title, rows)
	return nil
}

func runFig6(scale experiments.Scale, workerSweep []int) ([]experiments.TimingRow, error) {
	// The trained dataset is constructed once, before any timing starts:
	// both the method comparison and the worker sweep below reuse it, so
	// the sweep's wall clocks contain no datagen or training time.
	dd, err := cachedSetup(fmt.Sprintf("citations-trained/%d", scale.Fig6), func() (*experiments.DomainData, error) {
		return experiments.CitationSetup(scale.Fig6, true)
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("Figure 6 analogue — timing on %d citation records (scorer held-out acc %.1f%%)\n",
		dd.Data.Len(), 100*dd.PairAcc)
	ks := experiments.KsForScale(dd.Data.Len())
	rows, err := experiments.Fig6(dd, ks)
	if err != nil {
		return nil, err
	}
	experiments.RenderTimingTable(os.Stdout, rows)
	// Worker sweep over the full pruned pipeline: same answers and eval
	// counts at every bound, wall clock is the variable under test.
	fmt.Printf("\nworker sweep (pruned pipeline), workers = %v\n", workerSweep)
	sweep, err := experiments.Fig6WorkerSweep(dd, ks, workerSweep)
	if err != nil {
		return nil, err
	}
	experiments.RenderWorkerSweep(os.Stdout, sweep)
	return append(rows, sweep...), nil
}

func runFig7(scale experiments.Scale) error {
	rows, err := cachedFig7All(scale.Fig7)
	if err != nil {
		return err
	}
	fmt.Println("Table 1 analogue — datasets for comparing with exact algorithms")
	experiments.RenderTable1(os.Stdout, rows)
	fmt.Println()
	fmt.Println("Figure 7 analogue — accuracy of highest scoring grouping vs optimal")
	experiments.RenderFig7(os.Stdout, rows)
	return nil
}

func runTable1(scale experiments.Scale) error {
	rows, err := cachedFig7All(scale.Fig7)
	if err != nil {
		return err
	}
	fmt.Println("Table 1 analogue — datasets for comparing with exact algorithms")
	experiments.RenderTable1(os.Stdout, rows)
	return nil
}

func runPasses(scale experiments.Scale) error {
	dd, err := cachedSetup(fmt.Sprintf("citations/%d", scale.Citations), func() (*experiments.DomainData, error) {
		return experiments.CitationSetup(scale.Citations, false)
	})
	if err != nil {
		return err
	}
	fmt.Printf("E7 — upper-bound refinement passes (§4.3) on %d citation records\n", dd.Data.Len())
	ks := experiments.KsForScale(dd.Data.Len())
	if len(ks) > 4 {
		ks = ks[:4]
	}
	rows, err := experiments.PrunePassAblation(dd, ks)
	if err != nil {
		return err
	}
	experiments.RenderPassTable(os.Stdout, rows)
	return nil
}

func runEmbed(scale experiments.Scale) error {
	fmt.Println("E8 — linear-embedding ablation (§5.3.1)")
	for _, name := range []string{"address", "restaurant"} {
		rows, err := experiments.EmbedAblation(name, scale.Fig7)
		if err != nil {
			return err
		}
		experiments.RenderEmbedAblation(os.Stdout, rows)
		fmt.Println()
	}
	return nil
}

func runRank(scale experiments.Scale) error {
	for _, variant := range []struct {
		label string
		noise float64
	}{
		{"default noise", 0},
		{"low noise (0.15)", 0.15},
	} {
		noise := variant.noise
		dd, err := cachedSetup(fmt.Sprintf("students-noise/%d/%g", scale.Students, noise), func() (*experiments.DomainData, error) {
			return experiments.StudentSetupNoise(scale.Students, noise, false)
		})
		if err != nil {
			return err
		}
		fmt.Printf("E9 — §7 rank-query extensions on %d student records, %s\n",
			dd.Data.Len(), variant.label)
		ks := experiments.KsForScale(dd.Data.Len())
		if len(ks) > 4 {
			ks = ks[:4]
		}
		rows, err := experiments.RankQueries(dd, ks)
		if err != nil {
			return err
		}
		experiments.RenderRankTable(os.Stdout, rows)
		fmt.Println()
	}
	return nil
}

// runServe measures query latency under concurrent ingest: the trained
// citation domain behind internal/server, 4 ingest clients streaming
// half the dataset while 4 query clients record per-request latency.
// The bench runs twice — tracing disabled, then the default trace ring
// — so the table reads as a direct tracing-overhead comparison per
// endpoint (see OBSERVABILITY.md "Distributed query tracing").
func runServe(scale experiments.Scale) ([]servebench.Row, error) {
	dd, err := cachedSetup(fmt.Sprintf("citations-trained/%d", scale.Fig6), func() (*experiments.DomainData, error) {
		return experiments.CitationSetup(scale.Fig6, true)
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("E11 — serving latency under concurrent ingest, %d citation records\n", dd.Data.Len())
	var rows []servebench.Row
	for _, v := range []struct {
		label string
		limit int
	}{
		{"tracing=off", -1},
		{"tracing=on", 0},
	} {
		got, err := servebench.Bench(dd, servebench.Options{TraceLimit: v.limit, Variant: v.label})
		if err != nil {
			return nil, err
		}
		rows = append(rows, got...)
	}
	servebench.RenderTable(os.Stdout, rows)
	return rows, nil
}

// runInc sweeps the incremental serving path over the ingest-batch size
// × touched-component fraction grid: each cell reports the delta-apply
// (/refresh) latency, the first-query-of-epoch miss, the memoised hit,
// and the from-scratch batch run the incremental machinery amortises
// (see INCREMENTAL.md and EXPERIMENTS.md E13).
func runInc(scale experiments.Scale) ([]servebench.IncRow, error) {
	// The clustered synthetic domain (one cluster = one canopy
	// component); entity count scales with the Fig6 record target so
	// the three scales sweep component counts too.
	entities := scale.Fig6 / 3
	fmt.Printf("E13 — incremental serving grid, %d seeded clusters\n", entities)
	rows, err := servebench.BenchInc(servebench.IncOptions{Entities: entities})
	if err != nil {
		return nil, err
	}
	servebench.RenderIncTable(os.Stdout, rows)
	return rows, nil
}

// runApprox sweeps the approximate tier's sketch capacity on the
// clustered synthetic domain: per capacity, the unchanged-epoch latency
// of mode=approx vs the exact cache hit vs the exact miss, plus the
// served intervals' containment of ground truth and their tightness
// (see SERVING.md "Approximate tier" and EXPERIMENTS.md E14).
func runApprox(scale experiments.Scale) ([]servebench.ApproxRow, error) {
	entities := scale.Fig6 / 3
	fmt.Printf("E14 — approximate-tier capacity sweep, %d seeded clusters\n", entities)
	rows, err := servebench.BenchApprox(servebench.ApproxOptions{Entities: entities})
	if err != nil {
		return nil, err
	}
	servebench.RenderApproxTable(os.Stdout, rows)
	return rows, nil
}

// runShard sweeps the in-process sharded coordinator over the K × shard
// count × worker bound grid on the citation dataset, verifying every
// cell byte-identical to the single-machine pipeline. Shard count 1 runs
// the whole protocol over a single shard, so the table's first rows read
// as the pure coordination overhead.
func runShard(scale experiments.Scale, workerSweep []int) ([]experiments.ShardRow, error) {
	dd, err := cachedSetup(fmt.Sprintf("citations/%d", scale.Citations), func() (*experiments.DomainData, error) {
		return experiments.CitationSetup(scale.Citations, false)
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("E12 — sharded PrunedDedup sweep on %d citation records\n", dd.Data.Len())
	ks := experiments.KsForScale(dd.Data.Len())
	if len(ks) > 3 {
		ks = ks[:3]
	}
	rows, err := experiments.ShardSweep(dd, ks, []int{1, 2, 4, 8}, workerSweep)
	if err != nil {
		return nil, err
	}
	experiments.RenderShardTable(os.Stdout, rows)
	return rows, nil
}

func runStream(scale experiments.Scale) error {
	fmt.Println("E10 — incremental (streaming) accumulator vs from-scratch batch query")
	rows, err := experiments.StreamVsBatch(scale.Citations, 6, 10)
	if err != nil {
		return err
	}
	experiments.RenderStreamTable(os.Stdout, rows)
	return nil
}
