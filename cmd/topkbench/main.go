// Command topkbench regenerates the tables and figures of the paper's
// evaluation section (§6) on the synthetic dataset analogues.
//
// Usage:
//
//	topkbench -exp all                # every experiment at default scale
//	topkbench -exp fig2 -scale full   # citation pruning table, paper-size data
//	topkbench -exp fig7 -exp fig6     # selected experiments
//
// Experiments: table1, fig2, fig3, fig4, fig6, fig7, passes, embed, rank,
// stream, all. Scales: small, default, full (record counts in DESIGN.md §5).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"topkdedup/internal/experiments"
)

type expFlag []string

func (e *expFlag) String() string { return strings.Join(*e, ",") }
func (e *expFlag) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			*e = append(*e, part)
		}
	}
	return nil
}

func main() {
	var exps expFlag
	flag.Var(&exps, "exp", "experiment to run (repeatable / comma separated): table1, fig2, fig3, fig4, fig6, fig7, passes, embed, rank, stream, all")
	scaleName := flag.String("scale", "default", "dataset scale: small, default, full")
	flag.Parse()

	if len(exps) == 0 {
		exps = expFlag{"all"}
	}
	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale
	case "default":
		scale = experiments.DefaultScale
	case "full":
		scale = experiments.FullScale
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range exps {
		want[e] = true
	}
	all := want["all"]
	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		fmt.Printf("== %s (scale %s) ==\n", name, *scaleName)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %s --\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() error { return runTable1(scale) })
	run("fig2", func() error { return runPruning("fig2", scale) })
	run("fig3", func() error { return runPruning("fig3", scale) })
	run("fig4", func() error { return runPruning("fig4", scale) })
	run("fig6", func() error { return runFig6(scale) })
	run("fig7", func() error { return runFig7(scale) })
	run("passes", func() error { return runPasses(scale) })
	run("embed", func() error { return runEmbed(scale) })
	run("rank", func() error { return runRank(scale) })
	run("stream", func() error { return runStream(scale) })
}

func runPruning(which string, scale experiments.Scale) error {
	var (
		dd    *experiments.DomainData
		err   error
		title string
	)
	switch which {
	case "fig2":
		dd, err = experiments.CitationSetup(scale.Citations, false)
		title = fmt.Sprintf("Figure 2 analogue — Citation dataset: %d records", 0)
	case "fig3":
		dd, err = experiments.StudentSetup(scale.Students, false)
		title = "Figure 3 analogue — Student dataset"
	case "fig4":
		dd, err = experiments.AddressSetup(scale.Addresses, false)
		title = "Figure 4 analogue — Address dataset"
	}
	if err != nil {
		return err
	}
	if which == "fig2" {
		title = fmt.Sprintf("Figure 2 analogue — Citation dataset: %d records", dd.Data.Len())
	} else {
		title = fmt.Sprintf("%s: %d records", title, dd.Data.Len())
	}
	ks := experiments.KsForScale(dd.Data.Len())
	rows, err := experiments.PruningSweep(dd, ks, 2)
	if err != nil {
		return err
	}
	experiments.RenderPruneTable(os.Stdout, title, rows)
	return nil
}

func runFig6(scale experiments.Scale) error {
	dd, err := experiments.CitationSetup(scale.Fig6, true)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 6 analogue — timing on %d citation records (scorer held-out acc %.1f%%)\n",
		dd.Data.Len(), 100*dd.PairAcc)
	ks := experiments.KsForScale(dd.Data.Len())
	rows, err := experiments.Fig6(dd, ks)
	if err != nil {
		return err
	}
	experiments.RenderTimingTable(os.Stdout, rows)
	return nil
}

func runFig7(scale experiments.Scale) error {
	rows, err := experiments.Fig7All(scale.Fig7)
	if err != nil {
		return err
	}
	fmt.Println("Table 1 analogue — datasets for comparing with exact algorithms")
	experiments.RenderTable1(os.Stdout, rows)
	fmt.Println()
	fmt.Println("Figure 7 analogue — accuracy of highest scoring grouping vs optimal")
	experiments.RenderFig7(os.Stdout, rows)
	return nil
}

func runTable1(scale experiments.Scale) error {
	rows, err := experiments.Fig7All(scale.Fig7)
	if err != nil {
		return err
	}
	fmt.Println("Table 1 analogue — datasets for comparing with exact algorithms")
	experiments.RenderTable1(os.Stdout, rows)
	return nil
}

func runPasses(scale experiments.Scale) error {
	dd, err := experiments.CitationSetup(scale.Citations, false)
	if err != nil {
		return err
	}
	fmt.Printf("E7 — upper-bound refinement passes (§4.3) on %d citation records\n", dd.Data.Len())
	ks := experiments.KsForScale(dd.Data.Len())
	if len(ks) > 4 {
		ks = ks[:4]
	}
	rows, err := experiments.PrunePassAblation(dd, ks)
	if err != nil {
		return err
	}
	experiments.RenderPassTable(os.Stdout, rows)
	return nil
}

func runEmbed(scale experiments.Scale) error {
	fmt.Println("E8 — linear-embedding ablation (§5.3.1)")
	for _, name := range []string{"address", "restaurant"} {
		rows, err := experiments.EmbedAblation(name, scale.Fig7)
		if err != nil {
			return err
		}
		experiments.RenderEmbedAblation(os.Stdout, rows)
		fmt.Println()
	}
	return nil
}

func runRank(scale experiments.Scale) error {
	for _, variant := range []struct {
		label string
		noise float64
	}{
		{"default noise", 0},
		{"low noise (0.15)", 0.15},
	} {
		dd, err := experiments.StudentSetupNoise(scale.Students, variant.noise, false)
		if err != nil {
			return err
		}
		fmt.Printf("E9 — §7 rank-query extensions on %d student records, %s\n",
			dd.Data.Len(), variant.label)
		ks := experiments.KsForScale(dd.Data.Len())
		if len(ks) > 4 {
			ks = ks[:4]
		}
		rows, err := experiments.RankQueries(dd, ks)
		if err != nil {
			return err
		}
		experiments.RenderRankTable(os.Stdout, rows)
		fmt.Println()
	}
	return nil
}

func runStream(scale experiments.Scale) error {
	fmt.Println("E10 — incremental (streaming) accumulator vs from-scratch batch query")
	rows, err := experiments.StreamVsBatch(scale.Citations, 6, 10)
	if err != nil {
		return err
	}
	experiments.RenderStreamTable(os.Stdout, rows)
	return nil
}
