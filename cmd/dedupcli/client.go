package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	topk "topkdedup"
	"topkdedup/internal/server"
)

// clientBatch is the ingest batch size used when streaming a file to a
// topkd daemon.
const clientBatch = 500

// runClient is dedupcli's -server mode: load the input file, stream it
// to a running topkd over POST /ingest, force a snapshot, and run the
// requested query over HTTP. Output mirrors the local mode as closely
// as the wire format allows: the daemon returns record IDs within its
// own (server-side) dataset, so representative names are resolved from
// the just-ingested records when the server started empty, and by ID
// offset otherwise. A non-empty mode selects the count query's serving
// tier (exact, approx, or hybrid); approximate answers render with
// their [lower, count] error intervals.
func runClient(base, path, field string, k, r int, rank bool, threshold float64, mode string) error {
	base = strings.TrimRight(base, "/")
	if _, err := url.Parse(base); err != nil {
		return fmt.Errorf("bad server URL %q: %w", base, err)
	}
	var (
		d   *topk.Dataset
		err error
	)
	if strings.HasSuffix(path, ".csv") {
		d, err = topk.LoadDatasetCSV("input", path)
	} else {
		d, err = topk.LoadDataset("input", path)
	}
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 60 * time.Second}

	// The daemon may already hold records: our batch occupies IDs
	// [before, before+len) in its dataset.
	var health server.HealthResponse
	if err := clientGet(client, base+"/healthz", &health); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	fmt.Fprintf(os.Stderr, "dedupcli: daemon %s (%s) up %.0fs, epoch %d, status %s\n",
		health.Version, health.GoVersion, health.UptimeSeconds, health.SnapshotSeq, health.Status)
	before := health.Records

	for at := 0; at < d.Len(); at += clientBatch {
		end := at + clientBatch
		if end > d.Len() {
			end = d.Len()
		}
		recs := make([]server.IngestRecord, 0, end-at)
		for _, rec := range d.Recs[at:end] {
			values := make([]string, len(d.Schema))
			for i, f := range d.Schema {
				values[i] = rec.Fields[f]
			}
			recs = append(recs, server.IngestRecord{Weight: rec.Weight, Truth: rec.Truth, Values: values})
		}
		data, err := json.Marshal(server.IngestRequest{Records: recs})
		if err != nil {
			return err
		}
		for {
			resp, err := client.Post(base+"/ingest", "application/json", bytes.NewReader(data))
			if err != nil {
				return fmt.Errorf("ingest: %w", err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				time.Sleep(200 * time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("ingest: status %d: %s", resp.StatusCode, body)
			}
			break
		}
	}
	resp, err := client.Post(base+"/refresh", "application/json", nil)
	if err != nil {
		return fmt.Errorf("refresh: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("refresh: status %d", resp.StatusCode)
	}

	name := func(id int) string {
		if id >= before && id-before < d.Len() {
			return d.Recs[id-before].Field(field)
		}
		return fmt.Sprintf("record #%d", id)
	}

	switch {
	case threshold > 0:
		var out server.RankResponse
		if err := clientGet(client, fmt.Sprintf("%s/rank?t=%g", base, threshold), &out); err != nil {
			return err
		}
		fmt.Printf("groups with weight > %g (settled=%v, %d records served):\n",
			threshold, out.Result.Settled, out.Records)
		for i, e := range out.Result.Entries {
			if e.Group.Weight <= threshold {
				break
			}
			fmt.Printf("%3d. %-40s weight=%.2f upper=%.2f resolved=%v\n",
				i+1, name(e.Group.Rep), e.Group.Weight, e.Upper, e.Resolved)
		}
	case rank:
		var out server.RankResponse
		if err := clientGet(client, fmt.Sprintf("%s/rank?k=%d", base, k), &out); err != nil {
			return err
		}
		fmt.Printf("top-%d rank query (settled=%v, %d records served):\n", k, out.Result.Settled, out.Records)
		for i, e := range out.Result.Entries {
			if i == k {
				break
			}
			fmt.Printf("%3d. %-40s weight=%.2f upper=%.2f resolved=%v\n",
				i+1, name(e.Group.Rep), e.Group.Weight, e.Upper, e.Resolved)
		}
	case mode == server.ModeApprox || mode == server.ModeHybrid:
		var out server.ApproxTopKResponse
		q := fmt.Sprintf("%s/topk?k=%d&r=%d&mode=%s", base, k, r, mode)
		if err := clientGet(client, q, &out); err != nil {
			return err
		}
		fmt.Printf("approximate top-%d (sketch capacity %d, max error bound %g):\n",
			out.K, out.SketchCapacity, out.MaxErr)
		for i, e := range out.Entries {
			fmt.Printf("%3d. %-40s count in [%.2f, %.2f] err=%.2f\n",
				i+1, name(e.Rep), e.Lower, e.Count, e.Err)
		}
		if out.Exact != "" {
			fmt.Printf("(exact tier: %s)\n", out.Exact)
		}
		fmt.Printf("(answered from snapshot %d over %d records)\n", out.SnapshotSeq, out.Records)
	default:
		var out server.TopKResponse
		q := fmt.Sprintf("%s/topk?k=%d&r=%d", base, k, r)
		if mode != "" {
			q += "&mode=" + url.QueryEscape(mode)
		}
		if err := clientGet(client, q, &out); err != nil {
			return err
		}
		for ai, ans := range out.Result.Answers {
			fmt.Printf("answer %d (score %.3f):\n", ai+1, ans.Score)
			for gi, g := range ans.Groups {
				fmt.Printf("%3d. %-40s weight=%.2f mentions=%d\n",
					gi+1, name(g.Rep), g.Weight, len(g.Records))
			}
		}
		fmt.Printf("(answered from snapshot %d over %d records)\n", out.SnapshotSeq, out.Records)
	}
	return nil
}

func clientGet(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}
