// Command dedupcli answers TopK count queries over a TSV file from the
// shell, using a generic field-similarity domain: a sufficient predicate
// (exact token-normalised match of the primary field), a necessary
// predicate (3-gram overlap on the primary field), and a similarity-based
// scorer.
//
// The input format is the one written by Dataset.SaveTSV:
//
//	#weight<TAB>truth<TAB>field1<TAB>field2...
//
// (truth may be empty; weight 1 gives plain counts.)
//
// Usage:
//
//	dedupcli -in data.tsv -field name -k 10 -r 3    (.csv inputs also accepted)
//	dedupcli -in data.tsv -field name -rank -k 10
//	dedupcli -in data.tsv -field name -threshold 50
//	dedupcli -in data.tsv -field name -k 10 -explain
//	dedupcli -in data.tsv -field name -k 10 -trace-out trace.json
//
// With -server, dedupcli acts as a client for a running topkd daemon
// instead of computing locally: it ingests the loaded records over POST
// /ingest, forces a snapshot, and runs the query over GET /topk or GET
// /rank (the daemon's domain configuration applies; -overlap is ignored):
//
//	dedupcli -in data.tsv -field name -server http://localhost:8080 -k 10
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	topk "topkdedup"
	"topkdedup/internal/domains"
)

func main() {
	in := flag.String("in", "", "input TSV file (required)")
	field := flag.String("field", "", "primary entity-name field (required)")
	k := flag.Int("k", 10, "K: number of groups to return")
	r := flag.Int("r", 1, "R: number of alternative answers")
	rank := flag.Bool("rank", false, "run the TopK rank query instead of the count query")
	threshold := flag.Float64("threshold", 0, "run a thresholded rank query with this weight threshold")
	overlap := flag.Float64("overlap", 0.5, "necessary-predicate 3-gram overlap threshold")
	phases := flag.Bool("phases", false, "print the per-phase metrics breakdown (JSON, see OBSERVABILITY.md) to stderr after the query")
	explain := flag.Bool("explain", false, "print the per-query EXPLAIN report (predicate evals/hits, pruning rounds, bound evolution) to stderr after a count query")
	traceOut := flag.String("trace-out", "", "write the query's span tree as Chrome trace_event JSON to this file (load in chrome://tracing or Perfetto)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
	serverURL := flag.String("server", "", "base URL of a running topkd daemon; ingest the records there and query over HTTP instead of computing locally")
	mode := flag.String("mode", "", "serving mode for the count query against -server: exact, approx, or hybrid (empty = daemon default; see SERVING.md)")
	flag.Parse()
	if *in == "" || *field == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *serverURL != "" {
		if err := runClient(*serverURL, *in, *field, *k, *r, *rank, *threshold, *mode); err != nil {
			fmt.Fprintln(os.Stderr, "dedupcli:", err)
			os.Exit(1)
		}
		return
	}
	if *mode != "" {
		fmt.Fprintln(os.Stderr, "dedupcli: -mode only applies with -server (the local engine is always exact)")
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if err := run(*in, *field, *k, *r, *rank, *threshold, *overlap, *phases, *explain, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "dedupcli:", err)
		os.Exit(1)
	}
}

func run(path, field string, k, r int, rank bool, threshold, overlap float64, phases, explain bool, traceOut string) error {
	var (
		d   *topk.Dataset
		err error
	)
	if strings.HasSuffix(path, ".csv") {
		d, err = topk.LoadDatasetCSV("input", path)
	} else {
		d, err = topk.LoadDataset("input", path)
	}
	if err != nil {
		return err
	}
	found := false
	for _, f := range d.Schema {
		if f == field {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("field %q not in schema %v", field, d.Schema)
	}
	levels, scorer := genericDomain(field, overlap)
	cfg := topk.Config{}
	var col *topk.MetricsCollector
	if phases {
		col = topk.NewMetricsCollector()
		cfg.Metrics = col
		topk.SetPoolMetrics(col)
		defer topk.SetPoolMetrics(nil)
		defer func() { _ = col.WriteJSON(os.Stderr) }()
	}
	var tracer *topk.Tracer
	if explain || traceOut != "" {
		tracer = topk.NewTracer(1)
		cfg.Tracer = tracer
		cfg.Explain = explain
		defer func() {
			if traceOut == "" {
				return
			}
			if err := exportChromeTrace(tracer, traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "dedupcli: trace-out:", err)
			} else {
				fmt.Fprintf(os.Stderr, "trace written to %s (load in chrome://tracing or Perfetto)\n", traceOut)
			}
		}()
	}
	eng := topk.New(d, levels, scorer, cfg)

	switch {
	case threshold > 0:
		rr, err := eng.ThresholdedRank(threshold)
		if err != nil {
			return err
		}
		fmt.Printf("groups with weight > %g (settled=%v):\n", threshold, rr.Settled)
		for i, e := range rr.Entries {
			if e.Group.Weight <= threshold {
				break
			}
			fmt.Printf("%3d. %-40s weight=%.2f upper=%.2f resolved=%v\n",
				i+1, d.Recs[e.Group.Rep].Field(field), e.Group.Weight, e.Upper, e.Resolved)
		}
	case rank:
		rr, err := eng.TopKRank(k)
		if err != nil {
			return err
		}
		fmt.Printf("top-%d rank query (settled=%v):\n", k, rr.Settled)
		for i, e := range rr.Entries {
			if i == k {
				break
			}
			fmt.Printf("%3d. %-40s weight=%.2f upper=%.2f resolved=%v\n",
				i+1, d.Recs[e.Group.Rep].Field(field), e.Group.Weight, e.Upper, e.Resolved)
		}
	default:
		res, err := eng.TopK(k, r)
		if err != nil {
			return err
		}
		for ai, ans := range res.Answers {
			fmt.Printf("answer %d (score %.3f):\n", ai+1, ans.Score)
			for gi, g := range ans.Groups {
				fmt.Printf("%3d. %-40s weight=%.2f mentions=%d\n",
					gi+1, d.Recs[g.Rep].Field(field), g.Weight, len(g.Records))
			}
		}
		if len(res.Pruning) > 0 {
			last := res.Pruning[len(res.Pruning)-1]
			fmt.Printf("(pruned %d records to %d candidate groups, M=%.2f)\n",
				d.Len(), last.Survivors, last.LowerBound)
		}
		if explain {
			res.Explain.WriteText(os.Stderr)
		}
	}
	return nil
}

// exportChromeTrace writes the tracer's most recent trace in the Chrome
// trace_event shape.
func exportChromeTrace(tracer *topk.Tracer, path string) error {
	traces := tracer.Traces()
	if len(traces) == 0 {
		return fmt.Errorf("no trace recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := topk.WriteChromeTrace(f, tracer.Spans(traces[0].ID)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// genericDomain builds schema-agnostic predicates and a scorer around one
// primary field (shared with topkd via domains.Generic).
func genericDomain(field string, overlap float64) ([]topk.Level, topk.PairScorer) {
	levels, scorer := domains.Generic(field, overlap)
	return levels, topk.PairScorerFunc(scorer)
}
