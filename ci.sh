#!/bin/sh
# Repo verification: formatting, vet, doc coverage, build, the full test
# suite under the race detector (the race run is what enforces the
# strsim.Cache concurrency contract and the parallel pipeline's
# worker-pool discipline), and a short-mode smoke run of the no-op-sink
# overhead benchmark (guards the "nil metrics sink is free" claim of
# OBSERVABILITY.md).
set -eux

cd "$(dirname "$0")"

# gofmt -l lists unformatted files; any output is a failure.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...

# Every exported identifier must carry a doc comment, and the design
# references must not name repo paths that no longer exist (see
# cmd/doccheck; .md arguments select the reference-check mode).
go run ./cmd/doccheck \
    . \
    ./internal/classifier \
    ./internal/cluster \
    ./internal/core \
    ./internal/datagen \
    ./internal/domains \
    ./internal/dsu \
    ./internal/embed \
    ./internal/eval \
    ./internal/experiments \
    ./internal/faulty \
    ./internal/graph \
    ./internal/inc \
    ./internal/index \
    ./internal/intern \
    ./internal/obs \
    ./internal/parallel \
    ./internal/predicate \
    ./internal/rankquery \
    ./internal/records \
    ./internal/score \
    ./internal/segment \
    ./internal/server \
    ./internal/shard \
    ./internal/sketch \
    ./internal/stream \
    ./internal/strsim \
    ./internal/wal \
    DESIGN.md \
    EXPERIMENTS.md \
    INCREMENTAL.md \
    OBSERVABILITY.md \
    README.md \
    SERVING.md \
    SHARDING.md

# Metric and trace span names in code must match the OBSERVABILITY.md
# registry in both directions, and the registry must mangle injectively
# to valid Prometheus family names (see cmd/obscheck).
go run ./cmd/obscheck -doc OBSERVABILITY.md \
    . \
    ./internal/classifier \
    ./internal/cluster \
    ./internal/core \
    ./internal/experiments \
    ./internal/inc \
    ./internal/obs \
    ./internal/parallel \
    ./internal/server \
    ./internal/shard \
    ./internal/sketch \
    ./internal/stream \
    ./internal/wal

go build ./...
go test -race ./...

# Serving-layer smoke: topkd brings itself up on an ephemeral port, runs
# a full client session (healthz, ingest, topk, rank, metrics), and
# shuts down gracefully — once standalone, once through the in-process
# sharded coordinator (SHARDING.md). The multi-node HTTP path is covered
# by the race suite above (TestDifferentialShardPeersVsStandalone, and
# TestConcurrentSoakShardedEngine for the coordinator + 4 in-process
# shards under concurrent ingest).
go run ./cmd/topkd -smoke
go run ./cmd/topkd -smoke -shards 4

# Prometheus scrape smoke: a real topkd smoke session (auditor on)
# writes its /metrics?format=prom scrape to a file, and obscheck parses
# it as an exposition and diffs every scraped family against the
# OBSERVABILITY.md registry — an undocumented metric in a live scrape
# fails CI.
promscrape=$(mktemp)
go run ./cmd/topkd -smoke -smoke-prom "$promscrape" -audit-rate 1
go run ./cmd/obscheck -doc OBSERVABILITY.md -prom "$promscrape"
rm -f "$promscrape"

# Durability smoke (SERVING.md "Durability"): a child topkd is SIGKILLed
# mid-ingest and restarted on the same WAL directory; every acknowledged
# batch must be recovered whole, and the reborn server must answer
# queries and accept new ingests. The byte-level recovery and failover
# guarantees are pinned by the deterministic fault-injection tests
# (internal/faulty) in the race suite above; this exercises a real
# process kill end to end.
go run ./cmd/topkd -crash-smoke

# Failover soak, re-run by name so the concurrent dual-dispatch and
# hedging paths get a dedicated race-detector pass with faults firing
# even when unrelated packages are skipped.
go test -race -run 'TestReplicatedFaultSoak' ./internal/shard

# Fuzz smoke: a few seconds per target over the committed seed corpora
# (similarity-measure contracts; R-best segmentation DP invariants;
# cross-shard bound-merge equivalence; Space-Saving sketch soundness
# under DSU merges).
go test -run '^$' -fuzz '^FuzzStrsim$' -fuzztime 5s ./internal/strsim
go test -run '^$' -fuzz '^FuzzSegmentDP$' -fuzztime 5s ./internal/segment
go test -run '^$' -fuzz '^FuzzBoundMerge$' -fuzztime 5s ./internal/shard
go test -run '^$' -fuzz '^FuzzWALReplay$' -fuzztime 5s ./internal/wal
go test -run '^$' -fuzz '^FuzzSketchMerge$' -fuzztime 5s ./internal/sketch

# Smoke-run the instrumentation overhead benchmarks (one iteration per
# variant; the full comparisons are `go test -bench=NoopSinkOverhead`
# and `go test -benchmem -bench=EngineTopKTracing`, the latter recorded
# in BENCH_2026-08-05_tracing.txt).
go test -run '^$' -bench 'BenchmarkNoopSinkOverhead|BenchmarkEngineTopKTracing' -benchtime 1x -short .
go test -run '^$' -bench 'BenchmarkPromExposition' -benchtime 1x ./internal/obs

# Alloc-regression smoke: the zero-alloc pins (stage-0 prune rescan,
# pooled tokeniser, stop-word fast path) run as ordinary tests via
# testing.AllocsPerRun; re-run them by name so a steady-state allocation
# sneaking into the hot path fails CI even when unrelated packages are
# skipped, and smoke the hot-path benchmarks one iteration each.
go test -run 'TestStage0PruneNoAllocs' ./internal/core
go test -run 'TestTokenScratchNoAllocs|TestStopWordsContainsNoAllocLowercase' ./internal/strsim
go test -run 'TestAnswerCacheHitNoAllocs' ./internal/server
go test -run '^$' -bench 'BenchmarkStage0Prune' -benchtime 1x ./internal/core
go test -run '^$' -bench 'BenchmarkTokenSet|BenchmarkIndexBuild' -benchtime 1x ./internal/strsim ./internal/index
