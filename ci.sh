#!/bin/sh
# Repo verification: vet, build, and the full test suite under the race
# detector (the race run is what enforces the strsim.Cache concurrency
# contract and the parallel pipeline's worker-pool discipline).
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race ./...
