package topk_test

import (
	"fmt"

	topk "topkdedup"
	"topkdedup/internal/strsim"
)

// Example demonstrates a complete Top-2 count query over noisy person
// mentions: a sufficient predicate collapses order-insensitive exact
// names, a necessary predicate requires a shared surname, and a
// JaroWinkler-based scorer resolves the residual ambiguity.
func Example() {
	d := topk.NewDataset("mentions", "name")
	for _, name := range []string{
		"grace hopper", "hopper grace", "grace hopper", "grace hopper",
		"alan turing", "a. turing", "alan turing",
		"ada lovelace",
	} {
		d.Append(1, "", name)
	}

	sufficient := topk.Predicate{
		Name: "exact-tokens",
		Eval: func(a, b *topk.Record) bool {
			return strsim.JaccardTokens(a.Field("name"), b.Field("name")) == 1
		},
		Keys: func(r *topk.Record) []string {
			return []string{strsim.SortedInitials(r.Field("name"))}
		},
	}
	necessary := topk.Predicate{
		Name: "shared-token",
		Eval: func(a, b *topk.Record) bool {
			return strsim.CommonTokenCount(a.Field("name"), b.Field("name")) >= 1
		},
		Keys: func(r *topk.Record) []string {
			var keys []string
			for t := range strsim.TokenSet(r.Field("name")) {
				keys = append(keys, t)
			}
			return keys
		},
	}
	scorer := topk.PairScorerFunc(func(a, b *topk.Record) float64 {
		return 5 * (strsim.JaroWinkler(a.Field("name"), b.Field("name")) - 0.72)
	})

	eng := topk.New(d, []topk.Level{{Sufficient: sufficient, Necessary: necessary}}, scorer, topk.Config{Mode: topk.ModeViterbi})
	res, err := eng.TopK(2, 1)
	if err != nil {
		panic(err)
	}
	for i, g := range res.Answers[0].Groups {
		fmt.Printf("#%d %s: %d mentions\n", i+1, d.Recs[g.Rep].Field("name"), len(g.Records))
	}
	// Output:
	// #1 grace hopper: 4 mentions
	// #2 alan turing: 3 mentions
}
