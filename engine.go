package topk

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"topkdedup/internal/core"
	"topkdedup/internal/embed"
	"topkdedup/internal/index"
	"topkdedup/internal/intern"
	"topkdedup/internal/obs"
	"topkdedup/internal/parallel"
	"topkdedup/internal/rankquery"
	"topkdedup/internal/score"
	"topkdedup/internal/segment"
	"topkdedup/internal/shard"
)

// Mode selects how answer scores combine over the groupings supporting an
// answer.
type Mode int

// Answer scoring modes.
const (
	// ModeMarginal scores an answer by log Σ exp over all supporting
	// groupings (the paper's definition of a TopK answer's score).
	ModeMarginal Mode = iota
	// ModeViterbi scores an answer by its best single supporting grouping.
	ModeViterbi
)

// Config tunes the engine. The zero value gives the paper's defaults.
type Config struct {
	// PrunePasses is the number of exact upper-bound refinement passes in
	// the prune step (default 2, the paper's choice).
	PrunePasses int
	// Shards, when > 1, runs the pruning phases through the in-process
	// sharded coordinator (internal/shard): the dataset is partitioned
	// into canopy-closed shards, each executes collapse/bound/prune on
	// its slice, and the coordinator folds per-shard bounds into the
	// global M with the bound-exchange protocol (see SHARDING.md).
	// Results are byte-identical at every shard count; only eval
	// counters and phase wall times in the reported stats may differ.
	// <= 1 (the default) runs the single-machine pipeline.
	Shards int
	// MaxGroupWidth caps how many collapsed groups one answer group may
	// span in the segmentation search (default 24). Larger is slower;
	// the paper's equivalent is "not considering any cluster including
	// too many dissimilar points".
	MaxGroupWidth int
	// EmbedAlpha is the distance-decay factor of the greedy linear
	// embedding, in (0, 1) (default 0.7).
	EmbedAlpha float64
	// Mode selects Viterbi or Marginal answer scoring (default Marginal).
	Mode Mode
	// NonCandidatePenalty is the score assigned to group pairs failing
	// the last necessary predicate — known non-duplicates — so that
	// answer groups never span them (default -1e6; must be negative).
	NonCandidatePenalty float64
	// ScaleByMembers multiplies the representative-pair score by the
	// product of member counts, approximating the aggregate score over
	// all cross-member pairs (§4.1's closing remark). Default true
	// (disable with ScaleByMembersOff).
	ScaleByMembersOff bool
	// Workers bounds the worker pool used for predicate evaluation and
	// pair scoring throughout the pipeline (collapse, bound estimation,
	// prune, and the final phase's candidate scoring). <= 0 (the default)
	// means all CPUs; 1 runs fully serial. Results are byte-identical at
	// every worker count. When Workers != 1 the predicates and scorer
	// must be safe for concurrent use — the built-in domains are (they
	// share a strsim.NewSharedCache); custom predicates built over
	// strsim.NewCache must either switch to NewSharedCache or set
	// Workers to 1.
	Workers int
	// Metrics, when non-nil, receives per-phase metrics and spans from
	// every query this engine answers (see OBSERVABILITY.md for the name
	// registry; obs.Collector aggregates in memory). Metrics are
	// observational only: results are byte-identical with or without a
	// sink, at every Workers count. The default nil sink costs nothing.
	Metrics MetricsSink
	// Tracer, when non-nil, records a causal span tree for every query
	// this engine answers (see OBSERVABILITY.md "Trace model"): each
	// TopK/TopKRank call becomes one trace whose spans cover the
	// per-level collapse/bound/prune phases, prune passes, and the final
	// scoring steps. Like Metrics it is observational only and byte-
	// identical results are guaranteed at every Workers and Shards
	// count; the default nil tracer costs one pointer check per query
	// and zero allocations (guarded by the tracing benchmarks in
	// bench_test.go). When a query arrives with an already-traced
	// context (TopKCtx under a server span), that trace wins and Tracer
	// is not consulted.
	Tracer *Tracer
	// StartGroups, when non-nil, seeds Algorithm 2 with an existing
	// grouping instead of per-record singletons — the incremental
	// serving path hands the maintained level-1 collapse of an epoch
	// snapshot here (see INCREMENTAL.md). Each group's members must
	// already be established duplicates. Queries clone the top-level
	// slice, so one engine may serve concurrent queries off a shared
	// grouping; the Group values (including Members) are treated as
	// read-only throughout the pipeline.
	StartGroups []Group
	// Bound, when non-nil, replaces the from-scratch §4.2 lower-bound
	// scan (an alias of core.Options.Bound — see there for the byte-
	// identity contract). Consulted on the single-machine path only;
	// the sharded coordinator keeps its own per-shard scanners.
	Bound BoundEstimator
	// Explain, when true, attaches a per-query EXPLAIN report
	// (Result.Explain) derived from the query's trace: predicate
	// evaluation/hit counts per level, groups collapsed and pruned per
	// Jacobi round, the M lower bound's evolution, and final-phase
	// similarity evaluation counts. If no Tracer is configured an
	// ephemeral single-trace recorder is used, so Explain works
	// standalone.
	Explain bool
}

// Tracer is the span-tree recorder of the tracing layer — an alias of
// the internal obs.Recorder. Create one with NewTracer, assign it to
// Config.Tracer, and read traces back with Traces/Spans or export them
// with obs.WriteChromeTrace.
type Tracer = obs.Recorder

// NewTracer returns a tracer retaining the most recent limit traces
// (<= 0 selects the default ring size).
func NewTracer(limit int) *Tracer { return obs.NewRecorder(limit) }

// ExplainReport is the per-query EXPLAIN report — an alias of the
// internal obs.Explain (see OBSERVABILITY.md "EXPLAIN report schema").
type ExplainReport = obs.Explain

// SpanRecord is one finished trace span as returned by Tracer.Spans —
// an alias of the internal obs.SpanRecord.
type SpanRecord = obs.SpanRecord

// TraceSummary describes one trace retained by a Tracer — an alias of
// the internal obs.TraceSummary.
type TraceSummary = obs.TraceSummary

// WriteChromeTrace writes one trace's spans (as returned by
// Tracer.Spans) as a Chrome trace_event JSON document that
// chrome://tracing and Perfetto load directly.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	return obs.WriteChromeTrace(w, spans)
}

// BoundEstimator is the pluggable lower-bound phase — an alias of the
// internal core.BoundEstimator so the incremental serving layer can
// inject internal/inc's verdict-replaying estimator via Config.Bound.
type BoundEstimator = core.BoundEstimator

// MetricsSink is the observability sink interface of the pipeline — an
// alias of the internal obs.Sink so callers can pass a
// *MetricsCollector or any custom implementation.
type MetricsSink = obs.Sink

// MetricsCollector is the in-memory sink implementation (an alias of
// the internal obs.Collector): it aggregates counters, gauges, and
// log2-bucketed histograms; read it with Snapshot or WriteJSON.
type MetricsCollector = obs.Collector

// NewMetricsCollector returns an empty in-memory metrics sink. Assign
// it to Config.Metrics (and, for pool-level metrics, SetPoolMetrics).
func NewMetricsCollector() *MetricsCollector { return obs.NewCollector() }

// SetPoolMetrics attaches a process-wide sink to the internal worker
// pool: every parallel loop then emits parallel.for_calls and
// parallel.tasks counters plus per-worker busy-time observations. The
// pool is shared by all engines in the process, hence the separate,
// process-wide knob. Pass nil to detach.
func SetPoolMetrics(s MetricsSink) { parallel.SetSink(s) }

func (c *Config) defaults() {
	if c.PrunePasses <= 0 {
		c.PrunePasses = 2
	}
	if c.MaxGroupWidth <= 0 {
		c.MaxGroupWidth = 24
	}
	if c.EmbedAlpha <= 0 || c.EmbedAlpha >= 1 {
		c.EmbedAlpha = 0.7
	}
	if c.NonCandidatePenalty >= 0 {
		c.NonCandidatePenalty = -1e6
	}
}

// Engine answers TopK queries over one dataset.
type Engine struct {
	data   *Dataset
	levels []Level
	scorer PairScorer
	cfg    Config
}

// New creates an engine. levels must be non-empty. scorer may be nil, in
// which case queries still run but residual ambiguity among the surviving
// groups is not resolved (each survivor is treated as one entity) and R
// is capped at 1.
func New(d *Dataset, levels []Level, scorer PairScorer, cfg Config) *Engine {
	cfg.defaults()
	return &Engine{data: d, levels: levels, scorer: scorer, cfg: cfg}
}

// AnswerGroup is one entity group in a TopK answer.
type AnswerGroup struct {
	// Records are the record IDs aggregated into this entity.
	Records []int
	// Weight is the aggregate weight (the count the query ranks by).
	Weight float64
	// Rep is a representative record ID.
	Rep int
}

// Answer is one ranked TopK answer: K groups plus a score.
type Answer struct {
	// Score of the answer under the engine's Mode. Meaningful only
	// relative to other answers of the same query.
	Score float64
	// Groups are the K answer groups in decreasing weight.
	Groups []AnswerGroup
}

// Probabilities normalises the answers' scores into a probability
// distribution over the returned alternatives (softmax in log space, per
// the paper's "scores can be converted to probabilities through
// appropriate normalisation ... a Gibbs distribution"). The distribution
// is over the R returned answers only — groupings outside them carry the
// unaccounted remainder — so treat it as relative confidence. Returns nil
// when there are no answers.
func (r *Result) Probabilities() []float64 {
	if len(r.Answers) == 0 {
		return nil
	}
	// log-sum-exp over answer scores.
	maxS := r.Answers[0].Score
	for _, a := range r.Answers {
		if a.Score > maxS {
			maxS = a.Score
		}
	}
	var z float64
	for _, a := range r.Answers {
		z += math.Exp(a.Score - maxS)
	}
	probs := make([]float64, len(r.Answers))
	for i, a := range r.Answers {
		probs[i] = math.Exp(a.Score-maxS) / z
	}
	return probs
}

// Result is the output of Engine.TopK.
type Result struct {
	// Answers holds up to R answers, best first.
	Answers []Answer
	// Pruning reports the per-level statistics of the pruning phase.
	Pruning []LevelStats
	// Survivors is the number of collapsed groups that reached the final
	// phase.
	Survivors int
	// Exact reports that pruning alone determined the answer (exactly K
	// groups survived), so Answers has one entry and no scoring ran.
	Exact bool
	// Explain is the per-query EXPLAIN report, present only when
	// Config.Explain is set (or the query ran under a traced context
	// with Config.Explain set). Wall-clock fields vary run to run;
	// strip them with Explain.StripTimings before comparing results.
	Explain *ExplainReport `json:"explain,omitempty"`
}

// TopK answers the TopK count query: the K groups with the largest
// aggregate weight, as the R highest-scoring alternatives.
func (e *Engine) TopK(k, r int) (*Result, error) {
	return e.TopKCtx(context.Background(), k, r)
}

// TopKCtx is TopK under a context. When ctx carries an active trace
// span (a serving handler's), the query's spans join that trace;
// otherwise Config.Tracer (or, for Config.Explain, an ephemeral
// recorder) starts a fresh "engine.topk" trace. An untraced context
// with no tracer configured runs exactly like TopK.
func (e *Engine) TopKCtx(ctx context.Context, k, r int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("topk: K must be >= 1, got %d", k)
	}
	if r < 1 {
		r = 1
	}
	ctx, root := e.startQuerySpan(ctx, "engine.topk")
	if root != nil {
		root.Attr("k", float64(k))
		root.Attr("r", float64(r))
		root.Attr("shards", float64(e.cfg.Shards))
		root.Attr("workers", float64(e.cfg.Workers))
	}
	sp := obs.StartSpan(e.cfg.Metrics, "engine.topk")
	pd, err := e.prunedCtx(ctx, k)
	if err != nil {
		sp.End()
		root.End()
		return nil, err
	}
	res, err := e.finishTopKCtx(ctx, pd, k, r)
	sp.End()
	root.End()
	if err != nil {
		return nil, err
	}
	e.attachExplain(res, root)
	return res, nil
}

// startQuerySpan opens the query's span: a child when ctx is already
// traced, else a fresh root trace on Config.Tracer (or an ephemeral
// recorder when only Config.Explain asks for one). Returns (ctx, nil)
// when tracing is off entirely — the zero-cost path.
func (e *Engine) startQuerySpan(ctx context.Context, name string) (context.Context, *obs.TraceSpan) {
	if obs.SpanFromContext(ctx) != nil {
		return obs.StartChild(ctx, name)
	}
	rec := e.cfg.Tracer
	if rec == nil && e.cfg.Explain {
		rec = obs.NewRecorder(1)
	}
	if rec == nil {
		return ctx, nil
	}
	return rec.StartTrace(ctx, name)
}

// attachExplain derives Result.Explain from the finished query trace
// when Config.Explain asks for it.
func (e *Engine) attachExplain(res *Result, root *obs.TraceSpan) {
	if !e.cfg.Explain || root == nil {
		return
	}
	res.Explain = obs.BuildExplain(root.Recorder().Spans(root.TraceID()))
}

// prunedCtx runs the pruning phases (Algorithm 2 up to the final scoring
// phase), routed through the sharded coordinator when Config.Shards > 1
// and seeded from Config.StartGroups when one is configured.
func (e *Engine) prunedCtx(ctx context.Context, k int) (*core.Result, error) {
	if e.cfg.Shards > 1 {
		res, _, err := shard.RunCtx(ctx, e.data, e.startGroups(), e.levels, shard.Options{
			K: k, Shards: e.cfg.Shards, PrunePasses: e.cfg.PrunePasses,
			Workers: e.cfg.Workers, Sink: e.cfg.Metrics,
		})
		return res, err
	}
	if sg := e.startGroups(); sg != nil {
		return core.PrunedDedupFromCtx(ctx, e.data, sg, e.levels, e.coreOpts(k))
	}
	return core.PrunedDedupCtx(ctx, e.data, e.levels, e.coreOpts(k))
}

// coreOpts assembles the core options of one query from the engine
// configuration.
func (e *Engine) coreOpts(k int) core.Options {
	return core.Options{K: k, PrunePasses: e.cfg.PrunePasses, Workers: e.cfg.Workers, Sink: e.cfg.Metrics, Bound: e.cfg.Bound}
}

// startGroups clones Config.StartGroups' top-level slice for one query
// (nil when unconfigured). Only the top level needs copying: the
// pipeline sorts and re-merges the slice but never writes to an input
// group's Members.
func (e *Engine) startGroups() []Group {
	if e.cfg.StartGroups == nil {
		return nil
	}
	return append([]Group(nil), e.cfg.StartGroups...)
}

// finishTopKCtx turns a pruning result into the query answer, running
// the final R-best scoring phase when residual ambiguity remains.
func (e *Engine) finishTopKCtx(ctx context.Context, pd *core.Result, k, r int) (*Result, error) {
	res := &Result{Pruning: pd.Stats, Survivors: len(pd.Groups)}
	if pd.ExactlyK || e.scorer == nil || len(pd.Groups) <= k {
		res.Exact = pd.ExactlyK || len(pd.Groups) <= k
		res.Answers = []Answer{e.groupsToAnswer(pd.Groups, k)}
		return res, nil
	}
	answers, err := e.finalPhase(ctx, pd.Groups, k, r)
	if err != nil {
		return nil, err
	}
	res.Answers = answers
	return res, nil
}

// PrunedResult is the output of the pruning phases — an alias of the
// internal core result, exposed so externally coordinated pruning (a
// distributed shard run, see internal/shard.RunHTTP) can be finished
// into full answers with TopKFrom and TopKRankFrom.
type PrunedResult = core.Result

// TopKFrom finishes a TopK query from an externally produced pruning
// result: it runs the final R-best scoring phase over pd's surviving
// groups exactly as TopK would after its own pruning. pd must come from
// the same dataset and levels (e.g. a shard.RunHTTP over this engine's
// data); the HTTP serving layer's coordinator mode is the intended
// caller.
func (e *Engine) TopKFrom(pd *PrunedResult, k, r int) (*Result, error) {
	return e.TopKFromCtx(context.Background(), pd, k, r)
}

// TopKFromCtx is TopKFrom under a context, with the same tracing
// behaviour as TopKCtx (the final-phase spans join the context's trace
// — or a fresh one from Config.Tracer — alongside the externally run
// pruning's).
func (e *Engine) TopKFromCtx(ctx context.Context, pd *PrunedResult, k, r int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("topk: K must be >= 1, got %d", k)
	}
	if r < 1 {
		r = 1
	}
	ctx, root := e.startQuerySpan(ctx, "engine.topk")
	sp := obs.StartSpan(e.cfg.Metrics, "engine.topk")
	res, err := e.finishTopKCtx(ctx, pd, k, r)
	sp.End()
	root.End()
	if err != nil {
		return nil, err
	}
	e.attachExplain(res, root)
	return res, nil
}

// TopKRankFrom finishes a §7.1 TopK rank query from an externally
// produced pruning result, mirroring TopKFrom for TopKRank.
func (e *Engine) TopKRankFrom(pd *PrunedResult, k int) (*RankResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("topk: K must be >= 1, got %d", k)
	}
	return rankquery.FromPruned(e.data, e.levels, pd, k), nil
}

// groupsToAnswer takes the top-k surviving groups as a single answer.
func (e *Engine) groupsToAnswer(groups []Group, k int) Answer {
	if len(groups) > k {
		groups = groups[:k]
	}
	ans := Answer{}
	for _, g := range groups {
		ans.Groups = append(ans.Groups, AnswerGroup{Records: g.Members, Weight: g.Weight, Rep: g.Rep})
	}
	return ans
}

// finalPhase resolves residual ambiguity among the surviving groups:
// score candidate group pairs with P, embed, and run the R-best
// segmentation search (paper §5).
func (e *Engine) finalPhase(ctx context.Context, groups []Group, k, r int) ([]Answer, error) {
	n := len(groups)
	lastN := e.levels[len(e.levels)-1].Necessary

	// Candidate group pairs: those passing the last necessary predicate.
	scoreSpan := obs.StartSpan(e.cfg.Metrics, "engine.final.score")
	_, spScore := obs.StartChild(ctx, "engine.final.score")
	fs, candidatePairs := e.scoredCandidates(ctx, groups, lastN)
	defer fs.release()
	pairScore, edges := fs.pairScore, fs.edges
	if spScore != nil {
		spScore.Attr("candidate_pairs", float64(candidatePairs))
		spScore.Attr("scored_pairs", float64(len(edges)))
		spScore.End()
	}
	scoreSpan.End()
	pf := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		if s, ok := pairScore[[2]int{i, j}]; ok {
			return s
		}
		return e.cfg.NonCandidatePenalty
	}

	embedSpan := obs.StartSpan(e.cfg.Metrics, "engine.final.embed")
	_, spEmbed := obs.StartChild(ctx, "engine.final.embed")
	order := embed.Greedy(n, pf, edges, embed.Options{Alpha: e.cfg.EmbedAlpha})
	spEmbed.End()
	embedSpan.End()
	posPF := func(pi, pj int) float64 { return pf(order[pi], order[pj]) }
	width := e.cfg.MaxGroupWidth
	if width > n {
		width = n
	}
	sc := score.NewSegmentScorer(n, width, posPF, nil)
	defer sc.Release()
	mode := segment.Marginal
	if e.cfg.Mode == ModeViterbi {
		mode = segment.Viterbi
	}
	// Answer generation runs over the R'-best groupings rather than the
	// paper's length-stratified TopR: positions here are collapsed groups
	// with heterogeneous weights, so "largest segments by position count"
	// can exclude the best grouping when lengths tie. Each grouping maps
	// to its K aggregate-weight-largest segments; groupings mapping to the
	// same answer identity merge (max score in Viterbi mode, log-sum-exp
	// in Marginal mode — a truncated approximation of the paper's full
	// marginal, since only the R' best groupings contribute).
	rPrime := 6*r + 10
	segSpan := obs.StartSpan(e.cfg.Metrics, "engine.final.segment")
	defer segSpan.End()
	_, spSeg := obs.StartChild(ctx, "engine.final.segment")
	defer spSeg.End()
	rankings := segment.BestR(sc, rPrime)
	if len(rankings) == 0 {
		return []Answer{e.groupsToAnswer(groups, k)}, nil
	}
	// Normalise scores against the all-singletons segmentation so the
	// partition-independent constant (Eq. 1 rewards every cross negative
	// edge, including the engine's non-candidate penalties) cancels:
	// score 0 means "no merging", positive means merges net-agree with P.
	var base float64
	for p := 0; p < n; p++ {
		base += sc.Score(p, p)
	}
	var out []Answer
	index := map[string]int{}
	for _, rk := range rankings {
		ans, sig := e.answerFromWitness(groups, order, segment.Answer{Score: rk.Score - base, Full: rk.Segs}, k)
		if at, ok := index[sig]; ok {
			if mode == segment.Marginal {
				out[at].Score = logAddExp(out[at].Score, ans.Score)
			}
			continue
		}
		index[sig] = len(out)
		out = append(out, ans)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	if len(out) > r {
		out = out[:r]
	}
	return out, nil
}

// finalScratch holds the final phase's per-query buffers — the key-id
// inversion, candidate pair list, score slots, embedding edges, and the
// pair-score map — pooled across queries so a serving process answering
// a stream of TopK queries stops re-growing them. A scratch is owned by
// one query at a time: scoredCandidates acquires it, finalPhase releases
// it (after the embedding and segmentation no longer read the map).
type finalScratch struct {
	keyIDs    [][]uint32
	cands     []scoredPair
	slots     []pairSlot
	edges     []embed.Edge
	pairScore map[[2]int]float64
}

type scoredPair struct{ i, j int32 }

type pairSlot struct {
	s  float64
	ok bool
}

var finalScratchPool = sync.Pool{New: func() any {
	return &finalScratch{pairScore: make(map[[2]int]float64)}
}}

// release clears the scratch's per-query contents (keeping capacity) and
// returns it to the pool.
func (fs *finalScratch) release() {
	clear(fs.pairScore)
	fs.cands = fs.cands[:0]
	fs.slots = fs.slots[:0]
	fs.edges = fs.edges[:0]
	finalScratchPool.Put(fs)
}

// scoredCandidates enumerates the candidate group pairs — those sharing a
// blocking key and passing the last necessary predicate — and scores each
// with P, returning a pooled scratch holding the pair-score map and the
// embedding edges (the caller releases it when done). Blocking keys are
// interned to dense ids so the pair walk runs over the id-keyed index in
// a fixed order (item-major, keys in Keys() order) — where the
// string-keyed index enumerated in map-iteration order, varying run to
// run. The pairs are buffered serially, evaluated and scored in parallel
// (one result slot per pair), and folded back into the map in
// enumeration order, so the output is identical at every Config.Workers
// value. It also returns the candidate-pair count (the final phase's
// similarity-evaluation budget) for the EXPLAIN report.
func (e *Engine) scoredCandidates(ctx context.Context, groups []Group, lastN Predicate) (*finalScratch, int) {
	n := len(groups)
	fs := finalScratchPool.Get().(*finalScratch)
	tab := intern.New()
	if cap(fs.keyIDs) < n {
		fs.keyIDs = make([][]uint32, n)
	}
	fs.keyIDs = fs.keyIDs[:n]
	for i := range groups {
		fs.keyIDs[i] = lastN.KeyIDs(tab, e.data.Recs[groups[i].Rep], fs.keyIDs[i][:0])
	}
	ix := index.BuildID(n, tab.Len(), fs.keyIDs)
	ix.ForEachPair(func(i, j int) bool {
		fs.cands = append(fs.cands, scoredPair{int32(i), int32(j)})
		return true
	})
	cands := fs.cands
	if cap(fs.slots) < len(cands) {
		fs.slots = make([]pairSlot, len(cands))
	}
	fs.slots = fs.slots[:len(cands)]
	slots := fs.slots
	for t := range slots {
		slots[t] = pairSlot{}
	}
	parallel.ForCtx(ctx, e.cfg.Workers, len(cands), func(t int) {
		c := cands[t]
		ri, rj := e.data.Recs[groups[c.i].Rep], e.data.Recs[groups[c.j].Rep]
		if !lastN.Eval(ri, rj) {
			return
		}
		s := e.scorer.Score(ri, rj)
		if !e.cfg.ScaleByMembersOff {
			s *= float64(len(groups[c.i].Members) * len(groups[c.j].Members))
		}
		slots[t] = pairSlot{s: s, ok: true}
	})
	for t, c := range cands {
		if !slots[t].ok {
			continue
		}
		fs.pairScore[[2]int{int(c.i), int(c.j)}] = slots[t].s
		fs.edges = append(fs.edges, embed.Edge{A: int(c.i), B: int(c.j)})
	}
	obs.Count(e.cfg.Metrics, "engine.final.candidate_pairs", int64(len(cands)))
	obs.Count(e.cfg.Metrics, "engine.final.scored_pairs", int64(len(fs.edges)))
	return fs, len(cands)
}

func logAddExp(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// answerFromWitness converts one DP answer into the query's answer form:
// the K aggregate-weight-largest segments of the witness grouping, with a
// canonical signature for deduplication.
func (e *Engine) answerFromWitness(groups []Group, order []int, sa segment.Answer, k int) (Answer, string) {
	type segGroup struct {
		ag  AnswerGroup
		pos int
	}
	all := make([]segGroup, 0, len(sa.Full))
	for si, seg := range sa.Full {
		ag := AnswerGroup{}
		bestW := -1.0
		for p := seg.Start; p <= seg.End; p++ {
			g := groups[order[p]]
			ag.Records = append(ag.Records, g.Members...)
			ag.Weight += g.Weight
			if g.Weight > bestW {
				bestW = g.Weight
				ag.Rep = g.Rep
			}
		}
		sort.Ints(ag.Records)
		all = append(all, segGroup{ag: ag, pos: si})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].ag.Weight != all[b].ag.Weight {
			return all[a].ag.Weight > all[b].ag.Weight
		}
		return all[a].pos < all[b].pos
	})
	if len(all) > k {
		all = all[:k]
	}
	ans := Answer{Score: sa.Score}
	var sig strings.Builder
	for _, sg := range all {
		ans.Groups = append(ans.Groups, sg.ag)
		// Identity must reflect the exact record set: rep+size alone can
		// collide when two candidate groupings swap equal-sized members.
		h := fnv.New64a()
		var buf [8]byte
		for _, id := range sg.ag.Records {
			binary.LittleEndian.PutUint64(buf[:], uint64(id))
			h.Write(buf[:])
		}
		fmt.Fprintf(&sig, "|%d:%d:%x", sg.ag.Rep, len(sg.ag.Records), h.Sum64())
	}
	return ans, sig.String()
}

// RankEntry is one entry of a rank-query result.
type RankEntry = rankquery.Entry

// RankResult is the result of TopKRank and ThresholdedRank.
type RankResult = rankquery.RankResult

// TopKRank answers the TopK rank query (paper §7.1): the ranked order of
// the K largest groups, each identified by a canonical member, without
// resolving exact sizes. The rank-specific resolved-group pruning applies
// on top of the standard TopK pruning. Config.Shards routes the pruning
// phases through the sharded coordinator just as for TopK.
func (e *Engine) TopKRank(k int) (*RankResult, error) {
	return e.TopKRankCtx(context.Background(), k)
}

// TopKRankCtx is TopKRank under a context, with the same tracing
// behaviour as TopKCtx: the query runs under an "engine.rank" root span
// (or joins the context's trace). The sharded path's pruning rounds
// record the full per-level span tree; the single-machine rank pipeline
// records the root span only.
func (e *Engine) TopKRankCtx(ctx context.Context, k int) (*RankResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("topk: K must be >= 1, got %d", k)
	}
	ctx, root := e.startQuerySpan(ctx, "engine.rank")
	if root != nil {
		root.Attr("k", float64(k))
		root.Attr("shards", float64(e.cfg.Shards))
		root.Attr("workers", float64(e.cfg.Workers))
		defer root.End()
	}
	if e.cfg.Shards > 1 || e.cfg.StartGroups != nil {
		pd, err := e.prunedCtx(ctx, k)
		if err != nil {
			return nil, err
		}
		return rankquery.FromPruned(e.data, e.levels, pd, k), nil
	}
	return rankquery.TopKRank(e.data, e.levels, e.coreOpts(k))
}

// ThresholdedRank answers the thresholded rank query (paper §7.2): a
// ranked list of the groups with aggregate weight above t.
func (e *Engine) ThresholdedRank(t float64) (*RankResult, error) {
	return rankquery.ThresholdedRank(e.data, e.levels, t, e.cfg.PrunePasses)
}
